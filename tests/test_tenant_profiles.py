"""Unit tests for tenant profiles (`repro.parallel.profiles` + spec resolution)."""

import pytest

from repro.loadgen.trace import InvocationTrace
from repro.parallel import (
    ReplaySpec,
    TenantConfig,
    TenantProfile,
    TenantProfileError,
    run_parallel_replay,
)
from repro.parallel.profiles import parse_yaml_lite

TWO_TENANT_CSV = """at_s,tenant,app,input_bytes,fanout,seed
0.0,acme,wc,1MB,2,0
0.5,globex,wc,1MB,2,1
1.5,acme,wc,,,2
2.0,globex,wc,,,3
"""


@pytest.fixture()
def trace():
    return InvocationTrace.from_csv(TWO_TENANT_CSV, name="two")


# -- parsing ------------------------------------------------------------------


def test_profile_from_payload_parses_sizes_and_numbers():
    profile = TenantProfile.from_payload(
        "acme",
        {
            "system": "faasflow",
            "placement": "hashed",
            "timeout_s": 30,
            "input_bytes": "2MB",
            "fanout": "4",
            "system_overrides": {"cold_start_s": 0.2},
            "cluster": {"worker_count": 4},
        },
    )
    assert profile.system == "faasflow"
    assert profile.timeout_s == 30.0
    assert profile.input_bytes == 2 * 1024 * 1024
    assert profile.fanout == 4
    assert profile.cluster_overrides == {"worker_count": 4}
    assert not profile.is_empty()
    assert TenantProfile().is_empty()


@pytest.mark.parametrize("payload, fragment", [
    ({"sistem": "dataflower"}, "unknown profile keys"),
    ({"timeout_s": -1}, "timeout_s"),
    ({"fanout": 0}, "fanout"),
    ({"input_bytes": "-3MB"}, "input_bytes"),
    ({"system_overrides": [1]}, "mapping"),
    ("not-a-dict", "mapping"),
])
def test_bad_profile_payloads_name_the_tenant(payload, fragment):
    with pytest.raises(TenantProfileError) as excinfo:
        TenantProfile.from_payload("acme", payload)
    assert "'acme'" in str(excinfo.value)
    assert fragment in str(excinfo.value)


def test_tenant_config_schema_rejects_unknown_top_level():
    with pytest.raises(TenantProfileError):
        TenantConfig.from_payload({"defaults": {}})
    with pytest.raises(TenantProfileError):
        TenantConfig.from_payload({"tenants": ["acme"]})
    with pytest.raises(TenantProfileError):
        TenantConfig.from_payload([])


def test_tenant_config_load_json_and_yaml(tmp_path):
    (tmp_path / "cfg.json").write_text(
        '{"default": {"system": "dataflower"}, '
        '"tenants": {"acme": {"system": "faasflow"}}}'
    )
    (tmp_path / "cfg.yaml").write_text(
        "default:\n"
        "  system: dataflower\n"
        "tenants:\n"
        "  acme:\n"
        "    system: faasflow\n"
    )
    from_json = TenantConfig.load(tmp_path / "cfg.json")
    from_yaml = TenantConfig.load(tmp_path / "cfg.yaml")
    assert from_json == from_yaml
    assert from_json.tenants["acme"].system == "faasflow"


def test_tenant_config_load_rejects_bad_json(tmp_path):
    path = tmp_path / "cfg.json"
    path.write_text("{nope")
    with pytest.raises(TenantProfileError):
        TenantConfig.load(path)


def test_tenant_config_to_payload_round_trips():
    """The wire form the serve control plane ships to remote workers
    must rebuild the identical config through from_payload."""
    config = TenantConfig.from_payload({
        "default": {"system": "dataflower", "fanout": 3},
        "tenants": {
            "acme": {
                "system": "faasflow",
                "placement": "hashed",
                "timeout_s": 30,
                "input_bytes": "2MB",
                "system_overrides": {"cold_start_s": 0.2},
                "cluster": {"worker_count": 4},
                "max_concurrent_runs": 2,
            },
            "globex": {},
        },
    })
    assert TenantConfig.from_payload(config.to_payload()) == config
    # The payload is pure JSON scalars/containers (it crosses the wire).
    import json

    json.loads(json.dumps(config.to_payload()))
    # Empty layers serialize to the empty schema and still round-trip.
    assert TenantConfig().to_payload() == {}
    assert TenantConfig.from_payload(TenantConfig().to_payload()) \
        == TenantConfig()


# -- YAML-lite ----------------------------------------------------------------


def test_yaml_lite_scalars_comments_and_nesting():
    payload = parse_yaml_lite(
        "# top comment\n"
        "default:\n"
        "  system: dataflower\n"
        "  timeout_s: 30.5\n"
        "tenants:\n"
        "  acme:\n"
        "    system: 'faasflow'\n"
        "    fanout: 4\n"
        "    cluster:\n"
        "      worker_count: 2\n"
        "\n"
        "  globex:\n"
        "    placement: hashed  # inline comment\n"
    )
    assert payload == {
        "default": {"system": "dataflower", "timeout_s": 30.5},
        "tenants": {
            "acme": {
                "system": "faasflow",
                "fanout": 4,
                "cluster": {"worker_count": 2},
            },
            "globex": {"placement": "hashed"},
        },
    }


@pytest.mark.parametrize("text", [
    "- item\n",
    "just words\n",
    "a: 1\n   b: 2\n",          # indentation under a scalar
    "a:\n  b: 1\n    c: 2\n",   # deeper without a pending key
    "a:\n\tb: 1\n",             # tab indentation
])
def test_yaml_lite_rejects_out_of_subset(text):
    with pytest.raises(TenantProfileError):
        parse_yaml_lite(text)


def test_yaml_lite_quoted_hash_is_not_a_comment():
    payload = parse_yaml_lite(
        "a: \"foo#bar\"\n"
        "b: 'x # y'  # real comment\n"
    )
    assert payload == {"a": "foo#bar", "b": "x # y"}


def test_yaml_lite_empty_block_becomes_none():
    assert parse_yaml_lite("a:\nb: 1\n") == {"a": None, "b": 1}
    assert parse_yaml_lite("a:\n") == {"a": None}


# -- validation ---------------------------------------------------------------


def test_validate_flags_unknown_system_by_tenant_name():
    config = TenantConfig(tenants={"acme": TenantProfile(system="fooflow")})
    with pytest.raises(TenantProfileError) as excinfo:
        config.validate("dataflower", "round_robin")
    assert "tenant 'acme'" in str(excinfo.value)
    assert "unknown system" in str(excinfo.value)


def test_validate_flags_unknown_placement_by_tenant_name():
    config = TenantConfig(tenants={"acme": TenantProfile(placement="warp")})
    with pytest.raises(TenantProfileError) as excinfo:
        config.validate("dataflower", "round_robin")
    assert "tenant 'acme'" in str(excinfo.value)
    assert "placement" in str(excinfo.value)


def test_validate_flags_bad_system_overrides_for_resolved_system():
    config = TenantConfig(
        tenants={
            "acme": TenantProfile(
                system="faasflow", system_overrides={"no_such_knob": 1}
            )
        }
    )
    with pytest.raises(TenantProfileError) as excinfo:
        config.validate("dataflower", "round_robin")
    assert "no_such_knob" in str(excinfo.value)
    assert "'faasflow'" in str(excinfo.value)


def test_validate_flags_badly_typed_system_override_values():
    """A string where a float belongs must fail at validation time, not
    mid-replay inside a worker process."""
    config = TenantConfig(
        tenants={
            "acme": TenantProfile(system_overrides={"cold_start_s": "fast"})
        }
    )
    with pytest.raises(TenantProfileError) as excinfo:
        config.validate("dataflower", "round_robin")
    assert "tenant 'acme'" in str(excinfo.value)
    assert "cold_start_s" in str(excinfo.value)
    # Ints are fine where floats belong; bools are not.
    TenantConfig(
        tenants={"acme": TenantProfile(system_overrides={"cold_start_s": 1})}
    ).validate("dataflower", "round_robin")
    with pytest.raises(TenantProfileError):
        TenantConfig(
            tenants={
                "acme": TenantProfile(system_overrides={"cold_start_s": True})
            }
        ).validate("dataflower", "round_robin")
    # Optional[int] fields accept None and ints.
    TenantConfig(
        tenants={
            "acme": TenantProfile(
                system_overrides={"container_memory_mb": 512}
            )
        }
    ).validate("dataflower", "round_robin")
    with pytest.raises(TenantProfileError):
        TenantConfig(
            tenants={
                "acme": TenantProfile(
                    system_overrides={"container_memory_mb": "big"}
                )
            }
        ).validate("dataflower", "round_robin")


def test_validate_flags_bad_cluster_overrides():
    config = TenantConfig(
        tenants={"acme": TenantProfile(cluster_overrides={"worker_count": 0})}
    )
    with pytest.raises(TenantProfileError):
        config.validate("dataflower", "round_robin")
    config = TenantConfig(
        tenants={"acme": TenantProfile(cluster_overrides={"nodes": 3})}
    )
    with pytest.raises(TenantProfileError) as excinfo:
        config.validate("dataflower", "round_robin")
    assert "cluster" in str(excinfo.value)


def test_validate_accepts_good_config():
    config = TenantConfig(
        default=TenantProfile(system="dataflower"),
        tenants={
            "acme": TenantProfile(
                system="faasflow",
                placement="offset:1",
                system_overrides={"cold_start_s": 0.2},
                cluster_overrides={"worker_count": 4},
            )
        },
    )
    config.validate("dataflower", "round_robin")  # does not raise


# -- resolution ---------------------------------------------------------------


def test_resolution_precedence_tenant_over_default_over_base():
    spec = ReplaySpec(
        system_name="dataflower",
        timeout_s=60.0,
        default_profile=TenantProfile(system="sonic", timeout_s=40.0),
        tenant_profiles={"acme": TenantProfile(timeout_s=20.0)},
    )
    acme = spec.resolve("acme")
    assert acme.system == "sonic"        # inherited from the default layer
    assert acme.timeout_s == 20.0        # tenant layer wins
    assert acme.source == "tenant"
    other = spec.resolve("unlisted")
    assert other.system == "sonic"
    assert other.timeout_s == 40.0
    assert other.source == "default"
    assert ReplaySpec().resolve("x").source == "base"


def test_switching_systems_drops_stale_overrides():
    spec = ReplaySpec(
        system_name="dataflower",
        system_overrides={"pressure_threshold": 5},
        tenant_profiles={
            "acme": TenantProfile(
                system="faasflow", system_overrides={"cold_start_s": 0.1}
            ),
            "globex": TenantProfile(system_overrides={"cold_start_s": 0.1}),
        },
    )
    acme = spec.resolve("acme")
    assert acme.system_overrides == {"cold_start_s": 0.1}
    globex = spec.resolve("globex")  # same system: base overrides survive
    assert globex.system_overrides == {
        "pressure_threshold": 5, "cold_start_s": 0.1,
    }


def test_cluster_overrides_produce_distinct_cluster_config():
    spec = ReplaySpec(
        tenant_profiles={
            "acme": TenantProfile(cluster_overrides={"worker_count": 5})
        }
    )
    assert spec.resolve("acme").cluster_config.worker_count == 5
    assert spec.resolve("other").cluster_config.worker_count == 3


def test_mixed_tenant_cell_falls_back_to_default(trace):
    """A cell holding several tenants (timeslice sharding) cannot take a
    per-tenant profile; it resolves through the default layer."""
    spec = ReplaySpec(
        default_app="wc",
        default_profile=TenantProfile(timeout_s=25.0),
        tenant_profiles={"acme": TenantProfile(system="faasflow")},
    )
    resolved = spec.resolve("slice000000", trace)  # trace has two tenants
    assert resolved.system == "dataflower"
    assert resolved.timeout_s == 25.0
    assert resolved.source == "default"
    # A single-tenant sub-trace resolves by its tenant, whatever the key.
    acme_only = InvocationTrace(
        events=[e for e in trace.events if e.tenant == "acme"], name="acme"
    )
    assert spec.resolve("slice000000", acme_only).system == "faasflow"


def test_with_tenant_config_round_trip():
    config = TenantConfig(
        default=TenantProfile(timeout_s=30.0),
        tenants={"acme": TenantProfile(system="sonic")},
    )
    spec = ReplaySpec(default_app="wc").with_tenant_config(config)
    assert spec.has_profiles
    assert spec.resolve("acme").system == "sonic"
    assert spec.resolve("x").timeout_s == 30.0
    empty = ReplaySpec().with_tenant_config(TenantConfig())
    assert not empty.has_profiles


# -- seeds --------------------------------------------------------------------


def test_homogeneous_cell_seed_matches_legacy_derivation():
    """Specs without profiles keep the pre-profile seed values, so golden
    reports and existing replays are unchanged."""
    from repro.parallel.policy import stable_hash

    spec = ReplaySpec(seed=3)
    assert spec.cell_seed("a") == stable_hash("replay-seed:3:a")


def test_profile_that_changes_system_changes_cell_seed():
    base = ReplaySpec(seed=3)
    hetero = ReplaySpec(
        seed=3, tenant_profiles={"a": TenantProfile(system="faasflow")}
    )
    assert hetero.cell_seed("a") != base.cell_seed("a")
    assert hetero.cell_seed("b") == base.cell_seed("b")
    # A profile that changes no system/placement keeps the seed stable.
    timeout_only = ReplaySpec(
        seed=3, tenant_profiles={"a": TenantProfile(timeout_s=10.0)}
    )
    assert timeout_only.cell_seed("a") == base.cell_seed("a")


# -- end-to-end ---------------------------------------------------------------


def test_heterogeneous_replay_tags_tenants_and_stays_invariant(trace):
    """ISSUE acceptance: two tenants on different systems + placements,
    merged report bit-identical across shards 1/2/4 and workers 1/2."""
    spec = ReplaySpec(
        default_app="wc",
        seed=7,
        tenant_profiles={
            "acme": TenantProfile(system="faasflow", placement="hashed"),
            "globex": TenantProfile(system="sonic", placement="offset:1"),
        },
    )
    reports = [
        run_parallel_replay(trace, spec, shards=shards, workers=1).to_dict()
        for shards in (1, 2, 4)
    ]
    reports.append(
        run_parallel_replay(trace, spec, shards=4, workers=2).to_dict()
    )
    assert all(report == reports[0] for report in reports[1:])
    report = reports[0]
    assert report["tenants"]["acme"]["profile"]["system"] == "faasflow"
    assert report["tenants"]["acme"]["profile"]["placement"] == "hashed"
    assert report["tenants"]["globex"]["profile"]["system"] == "sonic"
    assert report["replay"]["profiles"]["acme"]["source"] == "tenant"
    # The headline system field names what actually ran.
    assert report["system"] == "faasflow+sonic"


def test_engine_rejects_profiles_under_non_tenant_policy(trace):
    """The guard lives in the engine, not just the CLI: under another
    partition the same tenant could replay under different profiles
    depending on which cells it shares, and the merged tags would lie."""
    spec = ReplaySpec(
        default_app="wc",
        tenant_profiles={"acme": TenantProfile(system="faasflow")},
    )
    with pytest.raises(ValueError, match="tenant.*shard policy"):
        run_parallel_replay(trace, spec, shards=2, policy="timeslice:1")
    # Without profiles, any policy remains fine.
    run_parallel_replay(
        trace, ReplaySpec(default_app="wc"), shards=2, policy="timeslice:1"
    )


def test_homogeneous_replay_reports_carry_no_profile_noise(trace):
    report = run_parallel_replay(
        trace, ReplaySpec(default_app="wc"), shards=2, workers=1
    ).to_dict()
    assert "profiles" not in report["replay"]
    assert "profile" not in report["tenants"]["acme"]


def test_profiles_change_results_only_for_their_tenant(trace):
    base = run_parallel_replay(
        trace, ReplaySpec(default_app="wc", seed=7), shards=1, workers=1
    ).to_dict()
    hetero = run_parallel_replay(
        trace,
        ReplaySpec(
            default_app="wc",
            seed=7,
            tenant_profiles={"acme": TenantProfile(system="faasflow")},
        ),
        shards=1,
        workers=1,
    ).to_dict()
    # globex's world is untouched by acme's profile.
    assert (
        hetero["tenants"]["globex"]["latency"]
        == base["tenants"]["globex"]["latency"]
    )
    # acme replays on a different system and sees different latencies.
    assert (
        hetero["tenants"]["acme"]["latency"]
        != base["tenants"]["acme"]["latency"]
    )
