"""Tests for trace-driven multi-tenant load generation."""

import pytest

from repro import Cluster, ClusterConfig, DataFlowerSystem, Environment, round_robin
from repro.apps import get_app
from repro.cluster.telemetry import MB
from repro.loadgen import (
    InvocationTrace,
    TraceEvent,
    run_trace,
    synthesize_trace,
)

JSON_TRACE = """
{
  "name": "t",
  "events": [
    {"at_s": 1.0, "tenant": "b", "app": "wc", "input_bytes": "2MB"},
    {"at_s": 0.0, "tenant": "a", "app": "wc", "fanout": 2},
    {"at_s": 2.0, "tenant": "a"}
  ]
}
"""

CSV_TRACE = """at_s,tenant,app,input_bytes,fanout,seed
0.0,a,wc,4MB,4,0
1.5,b,ml_ensemble,,,3
3.0,a,wc,1MB,2,1
"""


# -- trace model --------------------------------------------------------------


def test_events_sorted_by_time():
    trace = InvocationTrace.from_json(JSON_TRACE)
    assert [e.at_s for e in trace.events] == [0.0, 1.0, 2.0]
    assert trace.duration_s == 2.0
    assert trace.tenants() == ["a", "b"]
    assert trace.apps() == ["wc"]


def test_json_size_suffix_parsed():
    trace = InvocationTrace.from_json(JSON_TRACE)
    sizes = [e.input_bytes for e in trace.events]
    assert sizes == [None, 2 * MB, None]


def test_csv_round_trip_fields():
    trace = InvocationTrace.from_csv(CSV_TRACE)
    assert len(trace) == 3
    first = trace.events[0]
    assert first.tenant == "a" and first.app == "wc"
    assert first.input_bytes == 4 * MB and first.fanout == 4
    blank = trace.events[1]
    assert blank.input_bytes is None and blank.fanout is None
    assert blank.seed == 3


def test_load_dispatches_on_suffix(tmp_path):
    json_path = tmp_path / "t.json"
    json_path.write_text(JSON_TRACE)
    csv_path = tmp_path / "t.csv"
    csv_path.write_text(CSV_TRACE)
    assert len(InvocationTrace.load(json_path)) == 3
    assert InvocationTrace.load(csv_path).apps() == ["ml_ensemble", "wc"]
    assert InvocationTrace.load(json_path).name == "t"


def test_to_json_round_trips():
    trace = InvocationTrace.from_csv(CSV_TRACE, name="rt")
    again = InvocationTrace.from_json(trace.to_json())
    assert again.name == "rt"
    assert [e.at_s for e in again.events] == [e.at_s for e in trace.events]
    assert [e.app for e in again.events] == [e.app for e in trace.events]


def test_csv_skips_blank_and_comment_lines():
    text = """
# replay trace for the wc app
at_s,tenant,app

0.0,a,wc
# mid-file comment
1.0,b,wc

"""
    trace = InvocationTrace.from_csv(text)
    assert len(trace) == 2
    assert trace.tenants() == ["a", "b"]


def test_csv_malformed_row_names_line_number():
    text = "at_s,tenant,app\n0.0,a,wc\nnot-a-number,b,wc\n"
    with pytest.raises(ValueError, match="line 3"):
        InvocationTrace.from_csv(text)
    # A missing at_s on a later, comment-shifted line is located too.
    text = "# header comment\nat_s,tenant\n1.0,a\n\n,b\n"
    with pytest.raises(ValueError, match="line 5"):
        InvocationTrace.from_csv(text)


def test_csv_too_many_fields_rejected_with_line():
    text = "at_s,tenant\n0.0,a\n1.0,b,wc,extra\n"
    with pytest.raises(ValueError, match="line 3"):
        InvocationTrace.from_csv(text)


def test_csv_quoted_fields_survive():
    # Quoted fields — embedded newlines included — are legal CSV and must
    # round-trip through to_csv/from_csv.
    trace = InvocationTrace(
        events=[TraceEvent(at_s=1.0, tenant="acme,\nEU", app="wc")]
    )
    again = InvocationTrace.from_csv(trace.to_csv())
    assert again.events[0].tenant == "acme,\nEU"


def test_to_csv_round_trips():
    trace = InvocationTrace.from_csv(CSV_TRACE, name="rt")
    again = InvocationTrace.from_csv(trace.to_csv(), name="rt")
    assert [e.at_s for e in again.events] == [e.at_s for e in trace.events]
    assert [e.input_bytes for e in again.events] == [
        e.input_bytes for e in trace.events
    ]
    assert [e.fanout for e in again.events] == [e.fanout for e in trace.events]
    assert [e.seed for e in again.events] == [e.seed for e in trace.events]


def test_event_validation():
    with pytest.raises(ValueError):
        TraceEvent(at_s=-1.0)
    with pytest.raises(ValueError):
        TraceEvent(at_s=0.0, fanout=0)
    with pytest.raises(ValueError):
        TraceEvent(at_s=0.0, input_bytes=-5.0)


# -- synthesis ----------------------------------------------------------------


def test_synthesize_is_deterministic_per_seed():
    kwargs = dict(tenants=3, duration_s=30.0, mean_rpm=30, apps=["wc", "etl"])
    a = synthesize_trace(seed=1, **kwargs)
    b = synthesize_trace(seed=1, **kwargs)
    c = synthesize_trace(seed=2, **kwargs)
    assert a.to_json() == b.to_json()
    assert a.to_json() != c.to_json()


def test_synthesize_covers_tenants_and_apps():
    trace = synthesize_trace(
        tenants=4, duration_s=120.0, mean_rpm=30, apps=["wc", "ml_ensemble"],
        seed=0,
    )
    assert len(trace.tenants()) >= 3  # a zero-rate tenant is possible
    assert trace.apps() == ["ml_ensemble", "wc"]
    assert all(0 <= e.at_s < 120.0 for e in trace.events)


def test_synthesize_rejects_bad_args():
    with pytest.raises(ValueError):
        synthesize_trace(tenants=0, duration_s=10.0, mean_rpm=10)
    with pytest.raises(ValueError):
        synthesize_trace(tenants=1, duration_s=0.0, mean_rpm=10)


# -- replay -------------------------------------------------------------------


def make_system(app_names):
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(env, cluster)
    for name in app_names:
        workflow = get_app(name).build()
        system.deploy(workflow, round_robin(workflow, cluster.workers))
    return system


def test_run_trace_multi_tenant_interleaving():
    trace = InvocationTrace.from_csv(CSV_TRACE)
    system = make_system(["wc", "ml_ensemble"])
    result = run_trace(system, trace)
    assert result.offered == 3
    assert len(result.completed) == 3
    grouped = result.tenant_records()
    assert sorted(grouped) == ["a", "b"]
    assert len(grouped["a"]) == 2 and len(grouped["b"]) == 1
    # Submissions happen at the trace's absolute timestamps.
    submits = sorted(r.submit_time for r in result.records)
    assert submits == pytest.approx([0.0, 1.5, 3.0])
    by_workflow = result.workflow_records()
    assert sorted(by_workflow) == ["ml_ensemble", "wordcount"]


def test_run_trace_default_app_fills_missing():
    trace = InvocationTrace.from_json(JSON_TRACE)  # last event has no app
    system = make_system(["wc"])
    result = run_trace(system, trace, default_app="wc")
    assert len(result.completed) == 3
    assert all(r.workflow == "wordcount" for r in result.records)


def test_run_trace_requires_deployment():
    trace = InvocationTrace.from_csv(CSV_TRACE)
    system = make_system(["wc"])  # ml_ensemble missing
    with pytest.raises(KeyError):
        run_trace(system, trace)


def test_run_trace_requires_default_for_appless_events():
    # The appless event is *last*: the check must fire up front, before
    # any earlier event has been submitted.
    trace = InvocationTrace.from_events(
        [{"at_s": 0.0, "app": "wc"}, {"at_s": 1.0}]
    )
    system = make_system(["wc"])
    with pytest.raises(ValueError):
        run_trace(system, trace)
    assert system.records == []


def test_run_trace_caller_overrides_fill_gaps_only():
    trace = InvocationTrace.from_events(
        [{"at_s": 0.0, "fanout": 2}, {"at_s": 1.0}]
    )
    system = make_system(["wc"])
    result = run_trace(system, trace, default_app="wc", fanout=6,
                       input_bytes=1024.0)
    widths = sorted(
        len([t for t in r.tasks if t.function == "wordcount_count"])
        for r in result.records
    )
    assert widths == [2, 6]  # event value wins, override fills the gap


def test_replay_is_deterministic():
    trace = synthesize_trace(
        tenants=3, duration_s=20.0, mean_rpm=30, apps=["wc"], seed=9,
    )
    latencies = []
    for _ in range(2):
        system = make_system(["wc"])
        result = run_trace(system, trace)
        latencies.append([r.latency for r in result.completed])
    assert latencies[0] == latencies[1]
    assert latencies[0]  # something actually ran


def test_trace_report_has_breakdowns():
    trace = InvocationTrace.from_csv(CSV_TRACE)
    system = make_system(["wc", "ml_ensemble"])
    report = run_trace(system, trace).to_dict()
    assert set(report["tenants"]) == {"a", "b"}
    assert report["tenants"]["a"]["completed"] == 2
    assert report["tenants"]["a"]["latency"]["count"] == 2
    assert set(report["workflows"]) == {"wordcount", "ml_ensemble"}
