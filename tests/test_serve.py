"""In-process tests for the ``repro serve`` HTTP orchestration service.

The server boots on an ephemeral port (``port=0``) inside the test
process; clients are plain :mod:`urllib.request`.  The load-bearing
assertions mirror the acceptance criteria: a served report is
byte-identical to the same seed replayed via ``repro replay``, the
NDJSON stream yields per-cell progress before the final report, and a
bad inline ``tenant_config`` dies as a 400 naming the tenant.
"""

import contextlib
import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.metrics.report import render_json
from repro.metrics.telemetry import SCHEMA_VERSION, validate_event
from repro.parallel.profiles import TenantConfig
from repro.serve import create_server

TRACE = {
    "name": "t",
    "events": [
        {"at_s": 0.0, "tenant": "a"},
        {"at_s": 0.5, "tenant": "b", "input_bytes": "1MB"},
        {"at_s": 1.0, "tenant": "a", "fanout": 2},
    ],
}

RUN_BODY = {"app": "wc", "seed": 7, "trace": TRACE}

TENANT_CONFIG = {
    "default": {"placement": "round_robin"},
    "tenants": {"a": {"system": "faasflow", "placement": "hashed"}},
}


@pytest.fixture(scope="module")
def server():
    srv = create_server(port=0, workers=2, quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.close()
    thread.join(timeout=10)


def _get(server, path):
    try:
        with urllib.request.urlopen(server.url + path) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post(server, path, payload, raw=None):
    data = raw if raw is not None else json.dumps(payload).encode()
    request = urllib.request.Request(server.url + path, data=data,
                                     method="POST")
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _await_done(server, run_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, snap = _get(server, f"/v1/runs/{run_id}")
        assert status == 200
        if snap["status"] in ("done", "failed"):
            return snap
        time.sleep(0.05)
    raise AssertionError(f"run {run_id} did not finish within {timeout_s}s")


def _submit_and_wait(server, body):
    status, submitted = _post(server, "/v1/runs", body)
    assert status == 202
    assert submitted["status"] == "queued"
    assert submitted["url"] == f"/v1/runs/{submitted['id']}"
    return _await_done(server, submitted["id"])


def _cli_replay_report(tmp_path, trace, argv_tail):
    """The `repro replay --format json` report for an inline trace."""
    path = tmp_path / f"{trace['name']}.json"
    path.write_text(json.dumps(trace))
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(["replay", str(path), "--format", "json"] + argv_tail)
    assert code == 0
    report = json.loads(out.getvalue())
    # Scheduling facts and the file path are not part of the
    # deterministic report body.
    report.pop("parallel")
    report.pop("trace")
    return report


# -- registries and liveness --------------------------------------------------


def test_healthz(server):
    status, payload = _get(server, "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert set(payload["jobs"]) == {
        "queued", "running", "done", "failed", "interrupted"
    }
    assert payload["workers"] == 2


def test_registry_endpoints(server):
    status, apps = _get(server, "/v1/apps")
    assert status == 200
    assert "wc" in {app["name"] for app in apps["apps"]}
    status, systems = _get(server, "/v1/systems")
    assert status == 200
    assert {"dataflower", "faasflow", "sonic", "production"} <= {
        system["name"] for system in systems["systems"]
    }
    status, policies = _get(server, "/v1/policies")
    assert status == 200
    assert "round_robin" in policies["policies"]["placement"]
    assert "tenant" in policies["policies"]["shard"]


def test_unknown_paths_and_runs_404(server):
    assert _get(server, "/nope")[0] == 404
    assert _get(server, "/v1/runs/run-999999")[0] == 404
    assert _get(server, "/v1/runs/run-999999/events")[0] == 404
    assert _post(server, "/v1/nope", {})[0] == 404


# -- run lifecycle ------------------------------------------------------------


def test_run_report_byte_identical_to_cli_replay(server, tmp_path):
    snap = _submit_and_wait(server, RUN_BODY)
    assert snap["status"] == "done"
    assert snap["cells_done"] == 2
    reference = _cli_replay_report(
        tmp_path, TRACE, ["--app", "wc", "--seed", "7"]
    )
    assert render_json(snap["report"]) == render_json(reference)


def test_run_listing_contains_submitted_runs(server):
    snap = _submit_and_wait(server, RUN_BODY)
    status, listing = _get(server, "/v1/runs")
    assert status == 200
    assert {"id": snap["id"], "status": "done",
            "url": f"/v1/runs/{snap['id']}"} in listing["runs"]


def test_synth_run_and_engine_knobs(server, tmp_path):
    body = {
        "app": "wc",
        "seed": 3,
        "synth": {"tenants": 3, "duration_s": 10.0, "mean_rpm": 30.0,
                  "seed": 9, "name": "synthetic"},
        "workers": 2,
        "stream": True,
    }
    snap = _submit_and_wait(server, body)
    assert snap["status"] == "done", snap.get("error")
    # Same synthesis via the CLI: synth then replay must match exactly.
    out = io.StringIO()
    synth_path = tmp_path / "synthetic.json"
    with contextlib.redirect_stdout(out):
        assert main(["synth", "--tenants", "3", "--duration-s", "10",
                     "--mean-rpm", "30", "--seed", "9",
                     "--output", str(synth_path)]) == 0
    trace = json.loads(synth_path.read_text())
    reference = _cli_replay_report(
        tmp_path, trace, ["--app", "wc", "--seed", "3"]
    )
    assert render_json(snap["report"]) == render_json(reference)


def test_concurrent_submissions_converge(server, tmp_path):
    ids = []
    for _ in range(4):
        status, submitted = _post(server, "/v1/runs", RUN_BODY)
        assert status == 202
        ids.append(submitted["id"])
    reports = [
        render_json(_await_done(server, run_id)["report"]) for run_id in ids
    ]
    assert len(set(reports)) == 1  # same seed, same report, any scheduling
    reference = _cli_replay_report(
        tmp_path, TRACE, ["--app", "wc", "--seed", "7"]
    )
    assert reports[0] == render_json(reference)


def test_batched_engine_run_matches_cli(server, tmp_path):
    """"stream": false exercises the static batched engine; the report
    stays byte-identical and "workers" sets the shard width."""
    body = dict(RUN_BODY, stream=False, workers=2)
    snap = _submit_and_wait(server, body)
    assert snap["status"] == "done", snap.get("error")
    reference = _cli_replay_report(
        tmp_path, TRACE, ["--app", "wc", "--seed", "7"]
    )
    assert render_json(snap["report"]) == render_json(reference)


def test_tenant_config_run_tags_report(server):
    body = dict(RUN_BODY, tenant_config=TENANT_CONFIG)
    snap = _submit_and_wait(server, body)
    assert snap["status"] == "done", snap.get("error")
    profile = snap["report"]["tenants"]["a"]["profile"]
    assert profile == {"system": "faasflow", "placement": "hashed",
                       "source": "tenant"}


# -- NDJSON event stream ------------------------------------------------------


def test_events_stream_cells_before_report(server):
    snap = _submit_and_wait(server, RUN_BODY)
    with urllib.request.urlopen(
        server.url + f"/v1/runs/{snap['id']}/events"
    ) as response:
        assert response.headers["Content-Type"] == "application/x-ndjson"
        lines = response.read().splitlines()
    events = [json.loads(line) for line in lines]
    kinds = [event["event"] for event in events]
    # Multi-cell replay: at least one per-cell progress record arrives
    # before the final merged report (the acceptance criterion).
    assert kinds[0] == "queued"
    assert "cell" in kinds
    assert kinds.index("cell") < kinds.index("report")
    assert kinds.count("cell") == 2
    assert [event["seq"] for event in events] == list(range(len(events)))
    assert all(event["v"] == SCHEMA_VERSION for event in events)
    for event in events:
        validate_event(event)
    cell = events[kinds.index("cell")]
    assert {"cell", "offered", "completed", "failed", "run_id"} <= set(cell)
    report_event = events[kinds.index("report")]
    assert report_event["report"] == snap["report"]


def test_events_stream_follows_live(server):
    """A subscriber attached before completion still sees every event."""
    status, submitted = _post(server, "/v1/runs", RUN_BODY)
    assert status == 202
    with urllib.request.urlopen(
        server.url + f"/v1/runs/{submitted['id']}/events"
    ) as response:
        kinds = [json.loads(line)["event"] for line in response]
    assert kinds[0] == "queued"
    assert kinds[-1] in ("report", "error")
    assert "cell" in kinds


# -- telemetry surfaces: /metrics, /dashboard, streaming client ---------------


def test_metrics_endpoint_exposes_tenant_and_worker_series(server):
    _submit_and_wait(server, RUN_BODY)
    with urllib.request.urlopen(server.url + "/metrics") as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        text = response.read().decode("utf-8")
    # Per-tenant latency histograms (as Prometheus summaries) and the
    # worker-pool gauges — the acceptance criteria for /metrics.
    assert "# TYPE repro_tenant_request_latency_seconds summary" in text
    assert 'repro_tenant_request_latency_seconds{tenant="a",quantile="0.5"}' \
        in text
    assert 'repro_tenant_requests_total{tenant="a"}' in text
    assert "repro_job_workers 2" in text
    assert "repro_jobs_inflight " in text
    assert "repro_jobs_queued " in text
    assert 'repro_runs_total{status="done"}' in text
    assert "repro_cells_completed_total " in text
    assert "# TYPE repro_run_phase_seconds summary" in text


def test_dashboard_page_bakes_in_schema_version(server):
    with urllib.request.urlopen(server.url + "/dashboard") as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/html")
        page = response.read().decode("utf-8")
    assert f"const SCHEMA_VERSION = {SCHEMA_VERSION};" in page
    assert "__SCHEMA_VERSION__" not in page  # placeholder fully substituted
    assert "__EVENT_KINDS__" not in page
    assert "/v1/runs" in page  # tails the events stream via fetch


def test_dashboard_opt_out_is_404():
    srv = create_server(port=0, workers=1, quiet=True, dashboard=False)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        status, payload = _get(srv, "/dashboard")
        assert status == 404
        assert "dashboard" in payload["error"]
        # The rest of the surface is unaffected by the opt-out.
        assert _get(srv, "/healthz")[0] == 200
    finally:
        srv.close()
        thread.join(timeout=10)


def test_streaming_client_end_to_end(server):
    from repro.serve import ServeClient, ServeError

    client = ServeClient(server.url)
    assert client.healthz()["status"] == "ok"
    assert "wc" in {app["name"] for app in client.apps()}
    run_id = client.submit(RUN_BODY)
    events = list(client.events(run_id))  # validates schema + seq order
    kinds = [event["event"] for event in events]
    assert kinds[0] == "queued"
    assert kinds[-1] == "report"
    report = client.report(run_id)
    counters = {
        event["name"]: event["value"]
        for event in events if event["event"] == "counter"
    }
    assert counters["requests_offered"] == report["offered"]
    assert counters["requests_completed"] == report["completed"]
    assert counters["requests_failed"] == report["failed"]
    assert run_id in {run["id"] for run in client.runs()}
    assert "repro_runs_total" in client.metrics_text()
    assert client.run(RUN_BODY) == report  # submit/stream/report one-liner
    with pytest.raises(ServeError) as excinfo:
        client.status("run-999999")
    assert excinfo.value.status == 404


def test_events_keepalive_comment_lines_on_idle_run(monkeypatch):
    """A follower on a stalled run gets ': keepalive' comment lines
    instead of unbounded silence, and still sees the terminal event."""
    import repro.serve.jobs as jobs_module

    real_replay = jobs_module.run_parallel_replay
    release = threading.Event()

    def slow_replay(*args, **kwargs):
        release.wait(timeout=30)
        return real_replay(*args, **kwargs)

    monkeypatch.setattr(jobs_module, "run_parallel_replay", slow_replay)
    srv = create_server(port=0, workers=1, quiet=True, keepalive_s=0.05)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        status, submitted = _post(srv, "/v1/runs", RUN_BODY)
        assert status == 202
        saw_keepalive = False
        events = []
        with urllib.request.urlopen(
            srv.url + f"/v1/runs/{submitted['id']}/events"
        ) as response:
            for raw in response:
                line = raw.decode("utf-8").strip()
                if line.startswith(":"):
                    saw_keepalive = True
                    release.set()  # un-stall the run; stream should end
                    continue
                if line:
                    events.append(json.loads(line))
        assert saw_keepalive
        assert events[-1]["event"] == "report"
    finally:
        release.set()
        srv.close()
        thread.join(timeout=10)


# -- fail-fast validation (400s) ---------------------------------------------


def test_bad_tenant_config_is_400_naming_tenant(server):
    body = dict(RUN_BODY,
                tenant_config={"tenants": {"a": {"system": "fooflow"}}})
    status, payload = _post(server, "/v1/runs", body)
    assert status == 400
    assert "tenant 'a'" in payload["error"]
    assert "unknown system 'fooflow'" in payload["error"]


@pytest.mark.parametrize("mutation, fragment", [
    ({"app": "nope"}, "unknown benchmark"),
    ({"system": "warpdrive"}, "unknown system"),
    ({"placement": "warp"}, "placement"),
    ({"workers": 0}, "workers"),
    ({"stream": "yes"}, "stream"),
    ({"seed": "seven"}, "seed"),
    ({"timeout_s": -1}, "timeout_s"),
    ({"unknown_key": 1}, "unknown request keys"),
    ({"synth": {"tenants": 2}}, "exactly one of"),
    ({"trace": {"events": []}}, "non-empty"),
])
def test_bad_run_bodies_are_400(server, mutation, fragment):
    status, payload = _post(server, "/v1/runs", dict(RUN_BODY, **mutation))
    assert status == 400, payload
    assert fragment in payload["error"]


def test_appless_trace_without_default_app_is_400(server):
    body = {"trace": TRACE, "seed": 1}
    status, payload = _post(server, "/v1/runs", body)
    assert status == 400
    assert "naming no app" in payload["error"]


def test_invalid_json_body_is_400(server):
    status, payload = _post(server, "/v1/runs", None, raw=b"{nope")
    assert status == 400
    assert "invalid JSON" in payload["error"]


def test_non_object_body_is_400(server):
    status, payload = _post(server, "/v1/runs", ["not", "an", "object"])
    assert status == 400
    assert "JSON object" in payload["error"]


def test_negative_content_length_is_400(server):
    # rfile.read(-1) would block until client EOF; must be rejected.
    import http.client

    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.putrequest("POST", "/v1/runs")
        conn.putheader("Content-Length", "-1")
        conn.endheaders()
        response = conn.getresponse()
        assert response.status == 400
        assert "Content-Length" in json.loads(response.read())["error"]
    finally:
        conn.close()


# -- bounded retention --------------------------------------------------------


def test_finished_jobs_evict_oldest_first():
    from repro.serve import UnknownJob, parse_run_request
    from repro.serve.jobs import JobStore

    store = JobStore(workers=1, max_finished=2)
    try:
        ids = [store.submit(parse_run_request(RUN_BODY)) for _ in range(4)]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            listing = store.list()
            if {entry["id"] for entry in listing} == set(ids[-2:]) and all(
                entry["status"] == "done" for entry in listing
            ):
                break
            time.sleep(0.05)
        else:
            raise AssertionError(f"eviction never converged: {store.list()}")
        with pytest.raises(UnknownJob):
            store.snapshot(ids[0])
        assert store.snapshot(ids[-1])["status"] == "done"
    finally:
        store.close()


# -- server-level default tenant config --------------------------------------


def test_server_default_tenant_config_applies():
    config = TenantConfig.from_payload(TENANT_CONFIG)
    srv = create_server(port=0, workers=1,
                        default_tenant_config=config, quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        snap = _submit_and_wait(srv, RUN_BODY)
        assert snap["status"] == "done", snap.get("error")
        assert snap["report"]["tenants"]["a"]["profile"]["system"] == (
            "faasflow"
        )
        # An inline tenant_config overrides the server default entirely.
        body = dict(RUN_BODY, tenant_config={"tenants": {}})
        snap = _submit_and_wait(srv, body)
        assert "profile" not in snap["report"]["tenants"]["a"]
    finally:
        srv.close()
        thread.join(timeout=10)


# -- CLI wiring ---------------------------------------------------------------


def test_cli_serve_rejects_bad_flags(capsys):
    assert main(["serve", "--port", "-1"]) == 2
    assert "--port" in capsys.readouterr().err
    assert main(["serve", "--workers", "0"]) == 2
    assert "--workers" in capsys.readouterr().err


def test_cli_serve_bad_tenant_config_fails_at_boot(tmp_path, capsys):
    config = tmp_path / "bad.json"
    config.write_text('{"tenants": {"a": {"system": "fooflow"}}}')
    assert main(["serve", "--port", "0",
                 "--tenant-config", str(config)]) == 2
    err = capsys.readouterr().err
    assert "tenant 'a'" in err and "fooflow" in err
