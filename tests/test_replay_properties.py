"""Property-based shard/worker invariance for (heterogeneous) replay.

The engine's core guarantee: the merged report is a pure function of
(trace, spec, policy).  Seeded random traces crossed with random
tenant-profile maps must merge to byte-identical report dicts at any
``--shards``/``--workers`` setting, and per-cell seeds must never depend
on shard or worker indices.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.loadgen.trace import InvocationTrace, TraceEvent  # noqa: E402
from repro.parallel import (  # noqa: E402
    ReplaySpec,
    TenantProfile,
    partition_trace,
    run_parallel_replay,
)
from repro.parallel.policy import TenantShardPolicy  # noqa: E402

TENANTS = ["t0", "t1", "t2", "t3"]
SYSTEMS = ["dataflower", "faasflow", "sonic", "production"]
PLACEMENTS = ["round_robin", "single_node", "hashed", "offset:1"]
APPS = ["wc", "etl"]

events = st.lists(
    st.builds(
        TraceEvent,
        at_s=st.floats(
            min_value=0.0, max_value=8.0,
            allow_nan=False, allow_infinity=False,
        ),
        tenant=st.sampled_from(TENANTS),
        app=st.sampled_from(APPS),
        fanout=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
        seed=st.integers(min_value=0, max_value=999),
    ),
    min_size=1,
    max_size=6,
)

profiles = st.dictionaries(
    st.sampled_from(TENANTS),
    st.builds(
        TenantProfile,
        system=st.one_of(st.none(), st.sampled_from(SYSTEMS)),
        placement=st.one_of(st.none(), st.sampled_from(PLACEMENTS)),
        timeout_s=st.one_of(st.none(), st.sampled_from([30.0, 60.0])),
        fanout=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
    ),
    max_size=3,
)

SLOW = settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=list(HealthCheck),
)


@SLOW
@given(events=events, profile_map=profiles, seed=st.integers(0, 2**16))
def test_shard_count_never_changes_merged_report(events, profile_map, seed):
    """shards 1/2/4 merge to byte-identical report dicts."""
    from repro.metrics.report import render_json

    trace = InvocationTrace(events=events, name="prop")
    spec = ReplaySpec(
        default_app="wc", seed=seed, tenant_profiles=profile_map or None
    )
    reports = [
        run_parallel_replay(trace, spec, shards=shards, workers=1).to_dict()
        for shards in (1, 2, 4)
    ]
    assert reports[0] == reports[1] == reports[2]
    # Byte-identical once serialized, not merely ==-equal as dicts.
    texts = {render_json(report) for report in reports}
    assert len(texts) == 1


@settings(max_examples=2, deadline=None,
          suppress_health_check=list(HealthCheck))
@given(events=events, profile_map=profiles)
def test_worker_count_never_changes_merged_report(events, profile_map):
    """workers 1 vs 2 (real process pool) merge identically."""
    trace = InvocationTrace(events=events, name="prop")
    spec = ReplaySpec(
        default_app="wc", seed=3, tenant_profiles=profile_map or None
    )
    one = run_parallel_replay(trace, spec, shards=4, workers=1).to_dict()
    two = run_parallel_replay(trace, spec, shards=4, workers=2).to_dict()
    assert one == two


def _skewed_events(draw_events):
    """Skew a random event list: the first tenant gets ~10x the events."""
    hot = [
        TraceEvent(
            at_s=event.at_s + 0.1 * i,
            tenant=TENANTS[0],
            app=event.app,
            fanout=event.fanout,
            seed=event.seed + i,
        )
        for event in draw_events
        for i in range(3)
    ]
    return draw_events + hot


@settings(max_examples=2, deadline=None,
          suppress_health_check=list(HealthCheck))
@given(events=events, profile_map=profiles, seed=st.integers(0, 2**16))
def test_streamed_work_stealing_matches_serial_byte_for_byte(
    events, profile_map, seed
):
    """The tentpole invariant: the streaming work-stealing engine merges
    byte-identical to the serial path over random skewed traces, across
    shards 1/2/4 x workers 1/2 — completion/steal order never leaks."""
    from repro.metrics.report import render_json

    trace = InvocationTrace(events=_skewed_events(events), name="prop-skew")
    spec = ReplaySpec(
        default_app="wc", seed=seed, tenant_profiles=profile_map or None
    )
    serial = render_json(
        run_parallel_replay(
            trace, spec, shards=1, workers=1, stream=False
        ).to_dict()
    )
    for shards in (1, 2, 4):
        for workers in (1, 2):
            streamed = run_parallel_replay(
                trace, spec, shards=shards, workers=workers, stream=True
            )
            assert render_json(streamed.to_dict()) == serial, (
                shards, workers,
            )


@settings(max_examples=25, deadline=None,
          suppress_health_check=list(HealthCheck))
@given(
    events=events,
    profile_map=profiles,
    seed=st.integers(0, 2**16),
    shards=st.integers(min_value=1, max_value=5),
)
def test_cell_seeds_are_independent_of_sharding(
    events, profile_map, seed, shards
):
    """Per-cell seeds derive from (spec, cell) alone — partitioning the
    same cells into any number of shards yields the same seed per key,
    so no shard or worker index can leak into a cell's RNG streams."""
    trace = InvocationTrace(events=events, name="prop")
    spec = ReplaySpec(
        default_app="wc", seed=seed, tenant_profiles=profile_map or None
    )
    direct = {
        key: spec.cell_seed(key, cell)
        for key, cell in TenantShardPolicy().split(trace)
    }
    via_partition = {
        key: spec.cell_seed(key, cell)
        for batch in partition_trace(trace, shards)
        for key, cell in batch
    }
    assert via_partition == direct
    # And resolution itself is cell-pure: same profile tag either way.
    tags = {
        key: spec.resolve(key, cell).tag()
        for batch in partition_trace(trace, shards)
        for key, cell in batch
    }
    for key, cell in TenantShardPolicy().split(trace):
        assert tags[key] == spec.resolve(key, cell).tag()


@settings(max_examples=25, deadline=None)
@given(profile_map=profiles, seed=st.integers(0, 2**16))
def test_distinct_cells_get_distinct_seeds(profile_map, seed):
    spec = ReplaySpec(
        default_app="wc", seed=seed, tenant_profiles=profile_map or None
    )
    seeds = [spec.cell_seed(tenant) for tenant in TENANTS]
    assert len(set(seeds)) == len(seeds)
