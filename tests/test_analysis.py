"""Tests for the overlap/trigger analysis and claims checker."""

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    DataFlowerSystem,
    Environment,
    FaasFlowSystem,
    constant,
    default_request_factory,
    round_robin,
    run_open_loop,
)
from repro.analysis import check_claims, measure_overlap, measure_triggering
from repro.apps import get_app


def run_system(system_cls, app_name="wc", rpm=60, duration=30.0):
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = system_cls(env, cluster)
    app = get_app(app_name)
    workflow = app.build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))
    factory = default_request_factory(
        system, workflow.name, app.default_input_bytes, app.default_fanout
    )
    result = run_open_loop(system, workflow.name, factory, constant(rpm, duration))
    return system, result


def test_overlap_zero_for_control_flow():
    system, result = run_system(FaasFlowSystem, "vid", rpm=12)
    report = measure_overlap(system)
    assert report.net_busy_s > 0
    assert report.overlap_ratio == pytest.approx(0.0, abs=1e-9)


def test_overlap_positive_for_dataflower():
    system, result = run_system(DataFlowerSystem, "vid", rpm=12)
    report = measure_overlap(system)
    assert report.overlap_s > 0
    assert report.overlap_ratio > 0.2


def test_trigger_report_dataflower_vs_faasflow():
    flower_sys, flower = run_system(DataFlowerSystem)
    faas_sys, faas = run_system(FaasFlowSystem)
    flower_report = measure_triggering(flower.records)
    faas_report = measure_triggering(faas.records)
    assert flower_report.mean_overhead_s < faas_report.mean_overhead_s
    assert flower_report.task_count > 0
    # Control flow never overlaps functions of different stages.
    assert faas_report.early_start_count == 0


def test_early_starts_on_single_node():
    """Figure 13's setup: with local pipes, count begins before start ends."""
    from repro import DataFlowerConfig, RequestSpec, single_node

    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(env, cluster, DataFlowerConfig(input_local=True))
    app = get_app("wc")
    workflow = app.build()
    system.deploy(workflow, single_node(workflow, cluster.workers))
    for i in range(3):
        done = system.submit(
            workflow.name,
            RequestSpec(f"r{i}", input_bytes=app.default_input_bytes, fanout=4),
        )
        env.run(until=done)
    report = measure_triggering(system.records)
    assert report.early_start_count > 0


def test_trigger_report_requires_completed_requests():
    with pytest.raises(ValueError):
        measure_triggering([])


def test_check_claims_end_to_end():
    flower = {}
    faas = {}
    for bench in ["wc", "vid"]:
        _, flower[bench] = run_system(DataFlowerSystem, bench, rpm=20)
        _, faas[bench] = run_system(FaasFlowSystem, bench, rpm=20)
    checks = check_claims(flower, faas)
    by_claim = {c.claim: c for c in checks}
    p99 = by_claim["p99 latency reduction vs FaaSFlow"]
    assert p99.holds
    assert 0.0 < p99.measured < 1.0
    memory = by_claim["memory usage reduction vs FaaSFlow"]
    assert memory.holds
    for check in checks:
        assert isinstance(check.describe(), str)


def test_check_claims_requires_common_benchmarks():
    with pytest.raises(ValueError):
        check_claims({"a": None}, {"b": None})
