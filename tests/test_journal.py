"""Fault-injection tests for the durable run journal.

The journal is the crash-safety spine of ``repro serve --journal``, so
these tests attack the file itself: torn final writes, corrupt lines,
duplicate and orphan records must all be absorbed at load time (the
affected work simply re-runs — startup never crashes on a journal a
dying process left behind).  The :class:`JobStore` lifecycle tests pin
the recovery semantics: finished runs restore read-only, ``close()``
marks still-queued runs ``interrupted`` instead of abandoning them
silently, and a restart on the same journal resumes them to a report
byte-identical to an uninterrupted run.
"""

import json
import time

import pytest

from repro.metrics.report import render_json
from repro.serve import RunJournal, load_journal, parse_run_request
from repro.serve.jobs import JobStore

TRACE = {
    "name": "t",
    "events": [
        {"at_s": 0.0, "tenant": "a"},
        {"at_s": 0.5, "tenant": "b", "input_bytes": "1MB"},
        {"at_s": 1.0, "tenant": "a", "fanout": 2},
    ],
}

RUN_BODY = {"app": "wc", "seed": 7, "trace": TRACE}

#: A run slow enough (~seconds) that close() catches later submissions
#: still queued behind it on a one-worker store.
SLOW_BODY = {
    "app": "wc",
    "seed": 7,
    "synth": {"tenants": 6, "duration_s": 60, "mean_rpm": 120, "seed": 5},
}


def _await_terminal(store, run_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        snap = store.snapshot(run_id)
        if snap["status"] in ("done", "failed", "interrupted"):
            return snap
        time.sleep(0.02)
    raise AssertionError(f"run {run_id} did not finish within {timeout_s}s")


def _run_to_completion(journal_path):
    """Submit RUN_BODY on a journaled store, return the done snapshot."""
    store = JobStore(workers=1, journal=RunJournal(journal_path))
    try:
        run_id = store.submit(parse_run_request(RUN_BODY))
        snap = _await_terminal(store, run_id)
        assert snap["status"] == "done", snap.get("error")
        return snap
    finally:
        store.close()


# -- journal records round-trip ----------------------------------------------


def test_journal_records_round_trip(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = RunJournal(str(path))
    journal.record_submit("run-000001", {"app": "wc"}, {"app": "wc"}, 2)
    journal.record_cell("run-000001", "a", "a@123", {"key": "a"})
    journal.record_done("run-000001", {"offered": 3})
    journal.record_submit("run-000002", {"app": "wc"}, {}, 1)
    journal.record_interrupted("run-000002")
    journal.close()

    state = load_journal(str(path))
    assert state.anomalies == []
    assert list(state.runs) == ["run-000001", "run-000002"]
    first = state.runs["run-000001"]
    assert first.status == "done"
    assert first.report == {"offered": 3}
    assert first.cells == {"a": ("a@123", {"key": "a"})}
    assert first.cells_total == 2
    second = state.runs["run-000002"]
    assert second.status == "interrupted"
    assert state.max_run_number() == 2


def test_missing_journal_loads_empty(tmp_path):
    state = load_journal(str(tmp_path / "never-written.jsonl"))
    assert state.runs == {} and state.anomalies == []


# -- fault injection: the file under attack ----------------------------------


def test_torn_final_write_is_cell_not_completed(tmp_path):
    """A crash mid-append leaves a truncated last line: the cell it was
    persisting is treated as not completed — discarded with an anomaly,
    never a startup crash."""
    path = tmp_path / "journal.jsonl"
    _run_to_completion(str(path))
    whole = path.read_text()
    cell_line = next(
        line for line in whole.splitlines()
        if json.loads(line)["rec"] == "cell"
    )
    # Re-append the cell record, torn mid-way and unterminated.
    path.write_text(whole + cell_line[: len(cell_line) // 2])

    state = load_journal(str(path))
    assert len(state.anomalies) == 1
    assert "torn final write" in state.anomalies[0]
    # The journaled run is intact; dedup would have caught the cell had
    # the append completed.
    assert state.runs["run-000001"].status == "done"

    store = JobStore(workers=1, journal=RunJournal(str(path)))
    try:
        assert store.snapshot("run-000001")["status"] == "done"
    finally:
        store.close()


def test_corrupt_mid_file_line_is_skipped(tmp_path):
    path = tmp_path / "journal.jsonl"
    _run_to_completion(str(path))
    lines = path.read_text().splitlines()
    lines.insert(1, "\x00garbage not json\x00")
    lines.insert(3, '{"valid": "json", "but": "not a journal record"}')
    path.write_text("\n".join(lines) + "\n")

    state = load_journal(str(path))
    kinds = sorted(a.split(":")[1].strip() for a in state.anomalies)
    assert len(state.anomalies) == 2
    assert state.runs["run-000001"].status == "done"
    assert any("corrupt line" in a for a in state.anomalies)
    assert any("not a journal record" in a for a in state.anomalies)
    assert kinds  # anomaly messages carry line numbers


def test_duplicate_cell_records_dedupe_first_wins(tmp_path):
    path = tmp_path / "journal.jsonl"
    _run_to_completion(str(path))
    lines = path.read_text().splitlines()
    cell_lines = [l for l in lines if json.loads(l)["rec"] == "cell"]
    # Replay every cell record once more, as a crashed-then-restarted
    # writer might after losing its in-memory dedup state.
    path.write_text("\n".join(lines + cell_lines) + "\n")

    state = load_journal(str(path))
    run = state.runs["run-000001"]
    assert sorted(run.cells) == ["a", "b"]  # deduped, not doubled
    assert all("deduped" in a for a in state.anomalies)
    assert len(state.anomalies) == len(cell_lines)


def test_orphan_records_are_discarded(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = RunJournal(str(path))
    journal.record_cell("run-000099", "a", "a@1", {"key": "a"})
    journal.record_done("run-000099", {})
    journal.close()
    state = load_journal(str(path))
    assert state.runs == {}
    assert len(state.anomalies) == 2
    assert all("unknown run" in a for a in state.anomalies)


def test_stale_checkpoint_identity_is_rerun_not_merged(tmp_path):
    """A journal whose cell identities no longer match the request (the
    seed changed between runs of the same id) re-runs those cells; the
    resumed report reflects the *request*, never the stale residue."""
    path = tmp_path / "journal.jsonl"
    _run_to_completion(str(path))
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    # Tamper: change the journaled submission's seed but keep the old
    # cell residues (their identity tokens embed the old seed).
    doctored = []
    for record in lines:
        if record["rec"] == "submit":
            record["payload"] = dict(record["payload"], seed=99)
        if record["rec"] == "done":
            continue  # force a resume
        doctored.append(json.dumps(record, separators=(",", ":")))
    path.write_text("\n".join(doctored) + "\n")

    store = JobStore(workers=1, journal=RunJournal(str(path)))
    try:
        snap = _await_terminal(store, "run-000001")
        assert snap["status"] == "done", snap.get("error")
        resumed = render_json(snap["report"])
    finally:
        store.close()

    # Reference: seed 99 replayed fresh.
    fresh = JobStore(workers=1)
    try:
        run_id = fresh.submit(parse_run_request(dict(RUN_BODY, seed=99)))
        reference = render_json(_await_terminal(fresh, run_id)["report"])
    finally:
        fresh.close()
    assert resumed == reference


def test_unparseable_journaled_request_fails_cleanly(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = RunJournal(str(path))
    journal.record_submit("run-000001", {"app": "no-such-app"}, {}, 0)
    journal.close()
    store = JobStore(workers=1, journal=RunJournal(str(path)))
    try:
        snap = store.snapshot("run-000001")
        assert snap["status"] == "failed"
        assert "no longer valid" in snap["error"]
    finally:
        store.close()
    # The failure is journaled: the next boot restores it read-only
    # instead of retrying forever.
    assert load_journal(str(path)).runs["run-000001"].status == "failed"


# -- close() lifecycle: queued jobs become interrupted ------------------------


def test_close_interrupts_queued_jobs_and_restart_resumes(tmp_path):
    path = tmp_path / "journal.jsonl"
    store = JobStore(workers=1, journal=RunJournal(str(path)))
    slow_id = store.submit(parse_run_request(SLOW_BODY))
    deadline = time.monotonic() + 30
    while store.snapshot(slow_id)["status"] == "queued":
        assert time.monotonic() < deadline
        time.sleep(0.01)
    # The single worker is busy replaying SLOW_BODY: these stay queued.
    queued = [store.submit(parse_run_request(RUN_BODY)) for _ in range(2)]
    store.close(timeout_s=120)

    for run_id in queued:
        snap = store.snapshot(run_id)
        assert snap["status"] == "interrupted"  # not 'queued' forever
        events = [e["event"] for e in store._jobs[run_id].events]
        assert events[-1] == "interrupted"

    state = load_journal(str(path))
    assert [state.runs[i].status for i in queued] == ["interrupted"] * 2

    # Restart on the same journal: interrupted runs resume and finish.
    store2 = JobStore(workers=1, journal=RunJournal(str(path)))
    try:
        reports = set()
        for run_id in queued:
            snap = _await_terminal(store2, run_id)
            assert snap["status"] == "done", snap.get("error")
            assert snap["recovered"] is True
            reports.add(render_json(snap["report"]))
        assert len(reports) == 1  # same seed, same report
    finally:
        store2.close()


def test_submit_after_close_still_raises(tmp_path):
    store = JobStore(workers=1, journal=RunJournal(str(tmp_path / "j.jsonl")))
    store.close()
    with pytest.raises(RuntimeError):
        store.submit(parse_run_request(RUN_BODY))


def _journaled_cell_keys(path, run_id):
    """Raw scan of the journal file, keeping duplicates — load_journal
    dedupes, which would hide a double-journaled cell."""
    keys = []
    for line in path.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("rec") == "cell" and record.get("run") == run_id:
            keys.append(record["key"])
    return keys


def test_cell_retried_to_success_is_journaled_exactly_once(tmp_path):
    """A cell that fails its first attempt and succeeds on retry folds —
    and journals — exactly once, and the report is identical to the
    fault-free run's (retries are invisible to the replay semantics)."""
    control = _run_to_completion(str(tmp_path / "control.jsonl"))

    path = tmp_path / "journal.jsonl"
    body = dict(
        RUN_BODY,
        retry={"max_attempts": 2},
        faults=[{"kind": "poison", "cell": "a", "attempt": 1}],
    )
    store = JobStore(workers=1, journal=RunJournal(str(path)))
    try:
        run_id = store.submit(parse_run_request(body))
        snap = _await_terminal(store, run_id)
        assert snap["status"] == "done", snap.get("error")
        assert snap.get("degraded") is not True
        assert render_json(snap["report"]) == render_json(control["report"])
    finally:
        store.close()

    keys = _journaled_cell_keys(path, run_id)
    assert sorted(keys) == ["a", "b"]  # once each — attempt 1's failure
    # never reached the journal, only attempt 2's fold did.
    assert load_journal(str(path)).anomalies == []

    # Restart: the run restores read-only, nothing re-executes.
    store2 = JobStore(workers=1, journal=RunJournal(str(path)))
    try:
        snap = store2.snapshot(run_id)
        assert snap["status"] == "done"
        assert render_json(snap["report"]) == render_json(control["report"])
    finally:
        store2.close()
    assert _journaled_cell_keys(path, run_id) == keys  # file untouched


def test_degraded_resume_reexecutes_only_unjournaled_cells(tmp_path):
    """Crash-resume of a degraded run: the journaled surviving cell
    folds back from its residue, only the unjournaled (poisoned) cell
    re-executes — and fails again, reproducing the identical degraded
    report."""
    path = tmp_path / "journal.jsonl"
    body = dict(
        RUN_BODY,
        retry={"max_attempts": 1},
        faults=[{"kind": "poison", "cell": "a", "attempt": 0}],
        on_cell_failure="skip",
    )
    store = JobStore(workers=1, journal=RunJournal(str(path)))
    try:
        run_id = store.submit(parse_run_request(body))
        snap = _await_terminal(store, run_id)
        assert snap["status"] == "done", snap.get("error")
        assert snap["degraded"] is True
        reference = render_json(snap["report"])
    finally:
        store.close()

    # The poisoned cell left no residue; only "b" is journaled.
    assert _journaled_cell_keys(path, run_id) == ["b"]

    # Surgery: drop the terminal record, as a crash between the last
    # fold and the terminal append would.
    records = [json.loads(l) for l in path.read_text().splitlines()]
    kept = [r for r in records if r["rec"] != "done"]
    path.write_text(
        "\n".join(json.dumps(r, separators=(",", ":")) for r in kept) + "\n"
    )

    store2 = JobStore(workers=1, journal=RunJournal(str(path)))
    try:
        snap = _await_terminal(store2, run_id)
        assert snap["status"] == "done", snap.get("error")
        assert snap["degraded"] is True
        assert snap["recovered"] is True
        assert render_json(snap["report"]) == reference
        events = store2._jobs[run_id].events
        assert events[-1]["event"] == "degraded"
        cell_events = [e for e in events if e["event"] == "cell"]
        # "b" folded from the journal, not re-executed; "a" replayed
        # fresh (and was poisoned again).
        assert {e["cell"] for e in cell_events if e.get("resumed")} == {"b"}
    finally:
        store2.close()

    keys = _journaled_cell_keys(path, run_id)
    assert keys.count("b") == 1 and "a" not in keys


def test_recovered_ids_never_collide_with_new_submissions(tmp_path):
    path = tmp_path / "journal.jsonl"
    _run_to_completion(str(path))
    store = JobStore(workers=1, journal=RunJournal(str(path)))
    try:
        new_id = store.submit(parse_run_request(RUN_BODY))
        assert new_id == "run-000002"
        assert store.snapshot("run-000001")["status"] == "done"
    finally:
        store.close()
