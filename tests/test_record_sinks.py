"""The record-sink layer: bounded-memory merges that never change bytes.

Three guarantee families, mirroring ``src/repro/parallel/sink.py``:

- **Identity**: the merged report and the canonical record sequence are
  byte-identical across the in-memory sink, the disk-spilling sink, and
  both engines, at any shard/worker count (hypothesis property over
  skewed traces).
- **Integrity**: a torn or truncated spill run file raises
  :class:`~repro.parallel.sink.SpillError` at finalize — never a
  silently short report.
- **Boundedness**: the spilling sink's buffers flush at the threshold,
  finalize streams the k-way merge without materializing the record
  list, and the engine counts spilled records into telemetry.
"""

import json
import tracemalloc

import pytest

from repro.loadgen.trace import InvocationTrace, TraceEvent
from repro.metrics.report import render_json
from repro.parallel import ReplaySpec, run_parallel_replay
from repro.parallel.sink import (
    MemoryRecordSink,
    RecordSinkSpec,
    SpillError,
    SpilledRecords,
    SpillingRecordSink,
    make_record_sink,
    record_from_payload,
    record_to_payload,
)

TENANTS = ["t0", "t1", "t2", "t3"]


def _trace(events_per_tenant=3, tenants=TENANTS):
    events = [
        TraceEvent(at_s=0.5 * i, tenant=tenant, app="wc", seed=i)
        for tenant in tenants
        for i in range(events_per_tenant)
    ]
    return InvocationTrace(events=events, name="sink-test")


def _spill_spec(tmp_path, max_records=4):
    return RecordSinkSpec(
        kind="spill",
        spill_dir=str(tmp_path),
        max_records_in_memory=max_records,
    )


# -- configuration ------------------------------------------------------------


def test_sink_spec_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown record sink kind"):
        RecordSinkSpec(kind="tape")


def test_sink_spec_rejects_nonpositive_threshold():
    with pytest.raises(ValueError, match="max_records_in_memory"):
        RecordSinkSpec(kind="spill", max_records_in_memory=0)


def test_make_record_sink_dispatch(tmp_path):
    assert isinstance(make_record_sink(None), MemoryRecordSink)
    assert isinstance(make_record_sink(RecordSinkSpec()), MemoryRecordSink)
    sink = make_record_sink(_spill_spec(tmp_path))
    assert isinstance(sink, SpillingRecordSink)
    sink.close()


# -- record payload round-trip ------------------------------------------------


def test_record_payload_round_trips_exactly():
    result = run_parallel_replay(
        _trace(), ReplaySpec(default_app="wc", seed=3), shards=2, workers=1
    )
    for record in result.records:
        payload = json.loads(
            json.dumps(record_to_payload(record), separators=(",", ":"))
        )
        rebuilt = record_from_payload(payload)
        assert rebuilt == record


# -- engine-level identity across sinks ---------------------------------------


def _report(trace, shards, workers, stream, record_sink=None):
    spec = ReplaySpec(default_app="wc", seed=11, record_sink=record_sink)
    return run_parallel_replay(
        trace, spec, shards=shards, workers=workers, stream=stream
    )


def test_spill_sink_report_and_records_match_memory(tmp_path):
    trace = _trace(events_per_tenant=5)
    memory = _report(trace, shards=2, workers=1, stream=True)
    spill = _report(
        trace, shards=2, workers=1, stream=True,
        record_sink=_spill_spec(tmp_path),
    )
    assert render_json(memory.to_dict()) == render_json(spill.to_dict())
    assert isinstance(spill.records, SpilledRecords)
    assert list(spill.records) == list(memory.records)
    spill.records.close()


def test_spill_scratch_cleaned_up_on_close(tmp_path):
    spill = _report(
        trace=_trace(), shards=1, workers=1, stream=True,
        record_sink=_spill_spec(tmp_path, max_records=1),
    )
    assert isinstance(spill.records, SpilledRecords)
    assert spill.records.path.exists()
    spill.records.close()
    assert not spill.records.path.exists()
    assert list(tmp_path.iterdir()) == []


def test_empty_cells_spill_to_empty_list(tmp_path):
    sink = SpillingRecordSink(spill_dir=str(tmp_path))
    records, aggregate = sink.finalize({})
    assert records == []
    assert aggregate.total == 0


def test_engine_counts_spilled_records(tmp_path):
    from repro.metrics.telemetry import MetricsRegistry

    metrics = MetricsRegistry()
    trace = _trace(events_per_tenant=5)
    result = _report(trace, shards=1, workers=1, stream=True)
    offered = result.offered
    spec = ReplaySpec(
        default_app="wc", seed=11,
        record_sink=_spill_spec(tmp_path, max_records=2),
    )
    run_parallel_replay(trace, spec, shards=1, workers=1, metrics=metrics)
    spilled = metrics.counter("repro_records_spilled_total").value
    assert 0 < spilled <= offered


# -- hypothesis: spill x memory x engines x shards, byte-identical ------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

events_strategy = st.lists(
    st.builds(
        TraceEvent,
        at_s=st.floats(
            min_value=0.0, max_value=8.0,
            allow_nan=False, allow_infinity=False,
        ),
        tenant=st.sampled_from(TENANTS),
        app=st.sampled_from(["wc", "etl"]),
        fanout=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
        seed=st.integers(min_value=0, max_value=999),
    ),
    min_size=1,
    max_size=6,
)


def _skewed(events):
    """First tenant gets ~4x the events: spilling hits skewed cells."""
    hot = [
        TraceEvent(
            at_s=event.at_s + 0.1 * i,
            tenant=TENANTS[0],
            app=event.app,
            fanout=event.fanout,
            seed=event.seed + i,
        )
        for event in events
        for i in range(3)
    ]
    return events + hot


@settings(max_examples=4, deadline=None,
          suppress_health_check=list(HealthCheck))
@given(events=events_strategy, seed=st.integers(0, 2**16),
       threshold=st.integers(min_value=1, max_value=8))
def test_sinks_and_engines_merge_byte_identical(
    tmp_path_factory, events, seed, threshold
):
    """The tentpole property: spill x memory x batched x streamed over
    skewed traces at shards 1/2/4 — one canonical report, to the byte,
    and one canonical record sequence."""
    trace = InvocationTrace(events=_skewed(events), name="prop-spill")
    spill_dir = str(tmp_path_factory.mktemp("spill"))
    memory_spec = ReplaySpec(default_app="wc", seed=seed)
    spill_spec = ReplaySpec(
        default_app="wc", seed=seed,
        record_sink=RecordSinkSpec(
            kind="spill", spill_dir=spill_dir,
            max_records_in_memory=threshold,
        ),
    )
    baseline = run_parallel_replay(
        trace, memory_spec, shards=1, workers=1, stream=False
    )
    canonical = render_json(baseline.to_dict())
    records = list(baseline.records)
    for shards in (1, 2, 4):
        for spec in (memory_spec, spill_spec):
            for stream in (False, True):
                result = run_parallel_replay(
                    trace, spec, shards=shards, workers=1, stream=stream
                )
                assert render_json(result.to_dict()) == canonical, (
                    shards, spec.record_sink, stream,
                )
                assert list(result.records) == records


# -- torn-spill fault injection -----------------------------------------------


def _spilled_sink(tmp_path):
    """A sink with every cell flushed to disk run files."""
    result = run_parallel_replay(
        _trace(events_per_tenant=4),
        ReplaySpec(default_app="wc", seed=5),
        shards=1, workers=1,
    )
    sink = SpillingRecordSink(spill_dir=str(tmp_path), max_records_in_memory=1)
    by_tenant = {}
    for record in result.records:
        tenant = record.request_id.split("/", 1)[0]
        by_tenant.setdefault(tenant, []).append(record)
    for tenant, records in sorted(by_tenant.items()):
        sink.add(tenant, records)
    sink._flush_buffers()
    assert sink._runs, "expected disk run files"
    return sink


def test_torn_spill_run_raises_spill_error(tmp_path):
    sink = _spilled_sink(tmp_path)
    path = sink._runs[0].path
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - len(raw.splitlines()[-1]) // 2 - 1])
    with pytest.raises(SpillError, match="torn or truncated"):
        list(sink.finalize({})[0])


def test_truncated_spill_run_raises_spill_error(tmp_path):
    sink = _spilled_sink(tmp_path)
    path = sink._runs[0].path
    lines = path.read_bytes().splitlines(keepends=True)
    assert len(lines) > 1
    path.write_bytes(b"".join(lines[:-1]))  # drop one whole record
    with pytest.raises(SpillError, match="truncated"):
        list(sink.finalize({})[0])


def test_deleted_spill_run_raises_at_finalize(tmp_path):
    sink = _spilled_sink(tmp_path)
    sink._runs[0].path.unlink()
    with pytest.raises(FileNotFoundError):
        sink.finalize({})


# -- boundedness --------------------------------------------------------------


def test_buffers_flush_at_threshold(tmp_path):
    result = run_parallel_replay(
        _trace(events_per_tenant=4),
        ReplaySpec(default_app="wc", seed=5),
        shards=1, workers=1,
    )
    sink = SpillingRecordSink(
        spill_dir=str(tmp_path), max_records_in_memory=6
    )
    by_tenant = {}
    for record in result.records:
        tenant = record.request_id.split("/", 1)[0]
        by_tenant.setdefault(tenant, []).append(record)
    for tenant, records in sorted(by_tenant.items()):
        sink.add(tenant, records)
        # The buffer never rests above the threshold: crossing it
        # flushes every buffered cell to disk runs.
        assert sink._buffered <= 6
    total = sum(len(records) for records in by_tenant.values())
    assert sink.spilled_records + sink._buffered == total
    assert sink.spilled_records > 0
    records, aggregate = sink.finalize({})
    assert len(records) == total == aggregate.total


def test_spilling_finalize_streams_without_materializing(tmp_path):
    """Finalize's k-way merge must stream: its peak allocation stays a
    small constant even though the merged file holds thousands of
    records (the regression this pins: materializing the record list,
    or a global re-sort, would allocate proportionally)."""
    sink = SpillingRecordSink(
        spill_dir=str(tmp_path), max_records_in_memory=64
    )
    result = run_parallel_replay(
        _trace(events_per_tenant=2),
        ReplaySpec(default_app="wc", seed=5),
        shards=1, workers=1,
    )
    template = record_to_payload(result.records[0])
    # Synthesize ~6000 records across 6 cells from the template.
    for cell in range(6):
        records = []
        for i in range(1000):
            payload = dict(template)
            payload["request_id"] = f"c{cell}/req-{i:05d}"
            payload["submit_time"] = float(i)
            records.append(record_from_payload(payload))
        sink.add(f"c{cell}", records)
    assert sink.spilled_records > 0
    tracemalloc.start()
    records, aggregate = sink.finalize({})
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert aggregate.total == len(records) == 6000
    # Offsets (one int per record) plus bounded merge state; far below
    # the ~2 MB the materialized record objects would cost.
    assert peak < 1_000_000, peak
    records.close()


def test_spilled_records_sequence_semantics(tmp_path):
    result = run_parallel_replay(
        _trace(events_per_tenant=4),
        ReplaySpec(
            default_app="wc", seed=5,
            record_sink=_spill_spec(tmp_path, max_records=1),
        ),
        shards=1, workers=1,
    )
    records = result.records
    assert isinstance(records, SpilledRecords)
    materialized = list(records)
    assert len(records) == len(materialized) > 0
    assert records[0] == materialized[0]
    assert records[-1] == materialized[-1]
    assert records[1:3] == materialized[1:3]
    with pytest.raises(IndexError):
        records[len(records)]
    pages = list(records.iter_payloads(2, 5))
    assert [record_from_payload(p) for p in pages] == materialized[2:5]
    assert list(records.iter_payloads(len(records), None)) == []
    records.close()


# -- the CLI flags ------------------------------------------------------------


def test_replay_cli_spill_flags_byte_identical(tmp_path, capsys):
    from repro.cli import main

    trace = tmp_path / "trace.json"
    trace.write_text(json.dumps({
        "events": [
            {"at_s": 0.4 * i, "tenant": f"t{i % 3}", "app": "wc"}
            for i in range(9)
        ]
    }))
    assert main(["replay", str(trace), "--format", "json"]) == 0
    plain = capsys.readouterr().out
    assert main([
        "replay", str(trace), "--format", "json",
        "--spill-dir", str(tmp_path / "scratch"),
        "--max-records-in-memory", "2",
    ]) == 0
    spilled = capsys.readouterr().out
    plain_report = json.loads(plain)
    spilled_report = json.loads(spilled)
    # The "parallel" sub-object is wall-clock telemetry (events/s, RSS)
    # and legitimately varies run to run; the report body must not.
    plain_telemetry = plain_report.pop("parallel")
    spilled_telemetry = spilled_report.pop("parallel")
    assert plain_report == spilled_report
    assert plain_telemetry["cells"] == spilled_telemetry["cells"]
    assert plain_telemetry["policy"] == spilled_telemetry["policy"]


def test_replay_cli_rejects_bad_spill_threshold(tmp_path, capsys):
    from repro.cli import main

    trace = tmp_path / "trace.json"
    trace.write_text(json.dumps({
        "events": [{"at_s": 0.0, "tenant": "a", "app": "wc"}]
    }))
    assert main([
        "replay", str(trace),
        "--max-records-in-memory", "0",
    ]) != 0
    assert "--max-records-in-memory must be >= 1" in capsys.readouterr().err
