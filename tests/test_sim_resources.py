"""Unit tests for Resource, Store, and LevelContainer primitives."""

import pytest

from repro.sim import Environment, LevelContainer, Resource, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grants = []

    def user(env, tag, hold):
        with res.request() as req:
            yield req
            grants.append((tag, env.now))
            yield env.timeout(hold)

    env.process(user(env, "a", 5))
    env.process(user(env, "b", 5))
    env.process(user(env, "c", 5))
    env.run()
    assert grants == [("a", 0), ("b", 0), ("c", 5)]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, tag):
        with res.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    for tag in "abc":
        env.process(user(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_release_via_context_manager():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env):
        with res.request() as req:
            yield req
            yield env.timeout(1)

    env.process(user(env))
    env.run()
    assert res.count == 0


def test_resource_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def impatient(env):
        req = res.request()
        yield env.timeout(1)
        req.cancel()

    def patient(env):
        yield env.timeout(0.5)
        with res.request() as req:
            yield req
            granted.append(env.now)

    env.process(holder(env))
    env.process(impatient(env))
    env.process(patient(env))
    env.run()
    # The cancelled request must not block the patient one.
    assert granted == [10]


def test_store_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for item in [1, 2, 3]:
            yield store.put(item)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [1, 2, 3]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((item, env.now))

    def producer(env):
        yield env.timeout(4)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [("late", 4)]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put("a")
        times.append(env.now)
        yield store.put("b")
        times.append(env.now)

    def consumer(env):
        yield env.timeout(5)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [0, 5]


def test_store_predicate_get():
    env = Environment()
    store = Store(env)
    got = []

    def setup(env):
        yield store.put({"key": "a"})
        yield store.put({"key": "b"})

    def consumer(env):
        yield env.timeout(1)
        item = yield store.get(lambda it: it["key"] == "b")
        got.append(item["key"])
        item = yield store.get()
        got.append(item["key"])

    env.process(setup(env))
    env.process(consumer(env))
    env.run()
    assert got == ["b", "a"]


def test_store_predicate_waits_for_match():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get(lambda it: it == "wanted")
        got.append((item, env.now))

    def producer(env):
        yield store.put("other")
        yield env.timeout(2)
        yield store.put("wanted")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [("wanted", 2)]
    assert list(store.items) == ["other"]


def test_level_container_get_blocks_until_level():
    env = Environment()
    tank = LevelContainer(env, capacity=100, init=0)
    got = []

    def consumer(env):
        yield tank.get(30)
        got.append(env.now)

    def producer(env):
        yield env.timeout(1)
        yield tank.put(10)
        yield env.timeout(1)
        yield tank.put(25)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [2]
    assert tank.level == 5


def test_level_container_put_blocks_at_capacity():
    env = Environment()
    tank = LevelContainer(env, capacity=10, init=10)
    times = []

    def producer(env):
        yield tank.put(5)
        times.append(env.now)

    def consumer(env):
        yield env.timeout(3)
        yield tank.get(6)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [3]
    assert tank.level == 9


def test_level_container_rejects_negative_amounts():
    env = Environment()
    tank = LevelContainer(env, capacity=10)
    with pytest.raises(ValueError):
        tank.put(-1)
    with pytest.raises(ValueError):
        tank.get(-1)


def test_level_container_init_validation():
    env = Environment()
    with pytest.raises(ValueError):
        LevelContainer(env, capacity=5, init=6)
