"""Tests for the versioned telemetry layer: event schema + metrics registry.

Two halves, mirroring :mod:`repro.metrics.telemetry`:

- schema-level unit tests (envelope shape, validation rejections, one
  canonical example per kind — set-equal to the schema, so adding a
  kind without an example fails here), and
- end-to-end coverage that every kind the engine and
  :class:`~repro.serve.jobs.JobStore` can emit actually appears on a
  real event stream — fresh, failed, journal-resumed, and interrupted
  runs — plus the hypothesis property that streamed and batched engines
  carry identical counter totals.
"""

import json
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.serve.jobs as jobs_module
from repro.metrics.stats import percentile_sorted
from repro.metrics.telemetry import (
    METRICS,
    MetricsRegistry,
    SCHEMA_VERSION,
    SchemaError,
    event_envelope,
    event_kinds,
    metric_names,
    validate_event,
)
from repro.serve import parse_run_request
from repro.serve.jobs import JobStore
from repro.serve.journal import RunJournal

BODY = {
    "app": "wc",
    "seed": 5,
    "synth": {"tenants": 3, "duration_s": 10, "mean_rpm": 60, "seed": 2},
}


def _drain(store, run_id):
    events = list(store.follow(run_id))
    for event in events:
        validate_event(event)
    return events


# -- envelope + schema --------------------------------------------------------

#: One canonical, valid example per event kind.  The set-equality
#: assertion below makes this table the schema's regression net: a new
#: kind cannot land without a validated example.
EXAMPLES = {
    "queued": {"run_id": "run-000001", "request": {"app": "wc"}},
    "running": {"run_id": "run-000001"},
    "recovered": {"run_id": "run-000001", "cells_journaled": 2},
    "interrupted": {"run_id": "run-000001"},
    "cell": {
        "run_id": "run-000001", "cell": "tenant0", "offered": 4,
        "completed": 4, "failed": 0, "wall_s": 0.25,
        "resumed": True, "latency": {"mean_s": 0.1},
    },
    "progress": {
        "run_id": "run-000001", "cells_done": 1, "cells_total": 3,
        "offered": 4, "completed": 4, "failed": 0,
    },
    "counter": {
        "run_id": "run-000001", "name": "requests_completed", "value": 4,
    },
    "gauge": {
        "run_id": "run-000001", "name": "phase_seconds", "value": 0.5,
        "labels": {"phase": "execute"},
    },
    "report": {"run_id": "run-000001", "report": {"offered": 4}},
    "degraded": {
        "run_id": "run-000001", "report": {"offered": 4},
        "failed_cells": 1,
    },
    "error": {"run_id": "run-000001", "message": "boom"},
    "lease": {
        "run_id": "run-000001", "cell": "tenant0",
        "worker": "w-000001", "attempt": 1,
    },
    "lease_expired": {
        "run_id": "run-000001", "cell": "tenant0",
        "worker": "w-000001", "attempt": 1, "requeued": True,
    },
}


def test_every_kind_has_a_validating_example():
    assert set(EXAMPLES) == set(event_kinds())
    for kind, body in EXAMPLES.items():
        validate_event(event_envelope(kind, body, seq=0))


def test_envelope_sorts_body_and_stamps_version():
    envelope = event_envelope("error", {"run_id": "r", "message": "m"}, seq=3)
    assert list(envelope) == ["event", "v", "seq", "message", "run_id"]
    assert envelope["v"] == SCHEMA_VERSION
    with pytest.raises(ValueError):
        event_envelope("error", {"event": "spoofed"})


@pytest.mark.parametrize(
    "mutate",
    [
        lambda e: e.update(event="nonsense"),
        lambda e: e.update(v=SCHEMA_VERSION + 1),
        lambda e: e.pop("seq"),
        lambda e: e.update(seq=True),
        lambda e: e.update(seq=-1),
        lambda e: e.pop("message"),
        lambda e: e.update(message=42),
        lambda e: e.update(surprise="extra"),
    ],
    ids=[
        "unknown-kind", "wrong-version", "missing-seq", "bool-seq",
        "negative-seq", "missing-required", "mistyped-field",
        "undeclared-extra",
    ],
)
def test_validate_event_rejects(mutate):
    envelope = event_envelope("error", dict(EXAMPLES["error"]), seq=0)
    mutate(envelope)
    with pytest.raises(SchemaError):
        validate_event(envelope)


def test_validate_event_rejects_bool_where_int_expected():
    body = dict(EXAMPLES["cell"], offered=True)
    with pytest.raises(SchemaError):
        validate_event(event_envelope("cell", body, seq=0))


# -- metrics registry ---------------------------------------------------------


def test_registry_rejects_undeclared_and_retyped_names():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("repro_made_up_total")
    with pytest.raises(ValueError):
        registry.gauge("repro_cells_completed_total")  # declared a counter


def test_registry_get_or_create_is_stable_per_label_set():
    registry = MetricsRegistry()
    a = registry.counter("repro_tenant_requests_total", tenant="a")
    again = registry.counter("repro_tenant_requests_total", tenant="a")
    b = registry.counter("repro_tenant_requests_total", tenant="b")
    assert a is again and a is not b
    a.inc(2)
    b.inc()
    assert registry.counter_total("repro_tenant_requests_total") == 3


def test_histogram_quantiles_use_percentile_sorted():
    registry = MetricsRegistry()
    hist = registry.histogram(
        "repro_tenant_request_latency_seconds", tenant="a"
    )
    samples = [0.4, 0.1, 0.9, 0.2, 0.3]
    for s in samples:
        hist.observe(s)
    assert hist.count == 5
    assert hist.sum == pytest.approx(sum(samples))
    assert hist.quantile(50.0) == percentile_sorted(sorted(samples), 50.0)
    assert hist.quantile(99.0) == percentile_sorted(sorted(samples), 99.0)


def test_prometheus_rendering_shape():
    registry = MetricsRegistry()
    registry.counter("repro_runs_total", status="done").inc(2)
    registry.gauge("repro_jobs_inflight").set(1)
    hist = registry.histogram(
        "repro_tenant_request_latency_seconds", tenant='we"ird'
    )
    hist.observe(0.5)
    text = registry.render_prometheus()
    lines = text.splitlines()
    assert "# TYPE repro_runs_total counter" in lines
    assert 'repro_runs_total{status="done"} 2' in lines
    assert "# TYPE repro_jobs_inflight gauge" in lines
    # Exact-quantile histograms expose as Prometheus summaries.
    assert "# TYPE repro_tenant_request_latency_seconds summary" in lines
    assert (
        'repro_tenant_request_latency_seconds{tenant="we\\"ird",'
        'quantile="0.5"} 0.5' in lines
    )
    assert (
        'repro_tenant_request_latency_seconds_count{tenant="we\\"ird"} 1'
        in lines
    )
    # HELP precedes TYPE for every family, families sorted by name.
    helps = [l.split()[2] for l in lines if l.startswith("# HELP")]
    assert helps == sorted(helps)
    assert metric_names() == sorted(METRICS)


# -- every emittable kind appears on a real stream ----------------------------


def test_all_event_kinds_emitted_across_run_shapes(tmp_path, monkeypatch):
    seen = set()

    # 1. A fresh journaled run: queued/running/cell/progress/counter/
    #    gauge/report.
    journal_path = tmp_path / "journal.jsonl"
    store = JobStore(workers=1, journal=RunJournal(str(journal_path)))
    try:
        run_id = store.submit(parse_run_request(BODY))
        events = _drain(store, run_id)
        report = next(e for e in events if e["event"] == "report")["report"]
        counters = {
            e["name"]: e["value"] for e in events if e["event"] == "counter"
        }
        assert counters["requests_offered"] == report["offered"]
        assert counters["requests_completed"] == report["completed"]
        assert counters["requests_failed"] == report["failed"]
        assert counters["cells_completed"] == 3
        assert {
            e["labels"]["phase"] for e in events if e["event"] == "gauge"
        } == {"prepare", "execute", "finalize"}
        assert store.metrics.counter_total("repro_cells_completed_total") == 3
        assert (
            store.metrics.counter_total("repro_tenant_requests_total")
            == report["offered"]
        )
        assert store.metrics.counter_total("repro_journal_fsyncs_total") > 0
    finally:
        store.close()
    seen.update(e["event"] for e in events)

    # 2. Resume from a truncated copy of that journal (submit + all but
    #    one cell): recovered + resumed cells + a fresh re-executed cell,
    #    seq strictly increasing across the splice.
    records = [
        json.loads(line) for line in journal_path.read_text().splitlines()
    ]
    kept = [r for r in records if r["rec"] in ("submit", "cell")]
    kept.pop(max(i for i, r in enumerate(kept) if r["rec"] == "cell"))
    resume_path = tmp_path / "resume.jsonl"
    resume_path.write_text(
        "".join(json.dumps(r, separators=(",", ":")) + "\n" for r in kept)
    )
    store = JobStore(workers=1, journal=RunJournal(str(resume_path)))
    try:
        events = _drain(store, run_id)
        resumed_report = next(
            e for e in events if e["event"] == "report"
        )["report"]
        assert resumed_report == report  # resume is invisible in the report
        assert any(e["event"] == "cell" and e.get("resumed") for e in events)
        assert any(
            e["event"] == "cell" and not e.get("resumed") for e in events
        )
        counters = {
            e["name"]: e["value"] for e in events if e["event"] == "counter"
        }
        assert counters["requests_offered"] == report["offered"]
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert store.metrics.counter_total("repro_cells_resumed_total") == 2
    finally:
        store.close()
    seen.update(e["event"] for e in events)

    # 3. A degraded run: a poison fault on every attempt of one cell
    #    under on_cell_failure=skip — the terminal event is "degraded"
    #    and the report carries the failed cell.
    store = JobStore(workers=1)
    try:
        run_id = store.submit(parse_run_request(dict(
            BODY,
            retry={"max_attempts": 1},
            faults=[{"kind": "poison", "cell": "tenant0", "attempt": 0}],
            on_cell_failure="skip",
        )))
        events = _drain(store, run_id)
        terminal = events[-1]
        assert terminal["event"] == "degraded"
        assert terminal["failed_cells"] == 1
        failed = terminal["report"]["replay"]["failed_cells"]
        assert [(f["cell"], f["kind"], f["attempts"]) for f in failed] == [
            ("tenant0", "poison", 1)
        ]
        snapshot = store.snapshot(run_id)
        assert snapshot["status"] == "done" and snapshot["degraded"] is True
        assert store.metrics.snapshot()["repro_runs_total"] == {
            (("status", "degraded"),): 1.0
        }
    finally:
        store.close()
    seen.update(e["event"] for e in events)

    # 4. A run whose engine raises: the error terminal event.
    def boom(*args, **kwargs):
        raise RuntimeError("engine exploded")

    real_replay = jobs_module.run_parallel_replay
    monkeypatch.setattr(jobs_module, "run_parallel_replay", boom)
    store = JobStore(workers=1)
    try:
        run_id = store.submit(parse_run_request(BODY))
        events = _drain(store, run_id)
        assert events[-1]["event"] == "error"
        assert "engine exploded" in events[-1]["message"]
        assert store.metrics.snapshot()["repro_runs_total"] == {
            (("status", "failed"),): 1.0
        }
    finally:
        store.close()
    seen.update(e["event"] for e in events)

    # 5. Interrupted runs: one swept while queued, one swept while its
    #    worker is stuck past close()'s timeout.  The attached follower
    #    terminates instead of hanging forever (the satellite bugfix).
    release = threading.Event()

    def stuck(*args, **kwargs):
        release.wait(timeout=10)
        return real_replay(*args, **kwargs)

    monkeypatch.setattr(jobs_module, "run_parallel_replay", stuck)
    store = JobStore(workers=1)
    running_id = store.submit(parse_run_request(BODY))
    queued_id = store.submit(parse_run_request(BODY))
    collected = []
    follower = threading.Thread(
        target=lambda: collected.extend(store.follow(running_id)),
        daemon=True,
    )
    follower.start()
    for _ in range(200):
        if store.counts()["running"]:
            break
        threading.Event().wait(0.02)
    store.close(timeout_s=0.2)
    release.set()
    follower.join(timeout=10)
    assert not follower.is_alive(), "follower hung on an interrupted run"
    assert collected[-1]["event"] == "interrupted"
    queued_events = list(store.follow(queued_id))
    assert queued_events[-1]["event"] == "interrupted"
    seen.update(e["event"] for e in collected)
    seen.update(e["event"] for e in queued_events)

    # 6. A remote-fleet run: lease events per grant, plus a
    #    lease_expired from a grant deliberately left to time out
    #    (requeued at attempt 2 and finished by the driver) — and a
    #    report byte-identical to the local run of shape 1.
    from repro.worker import _execute_grant

    import time as time_module

    remote_body = dict(BODY, workers="remote", retry={"max_attempts": 2})
    store = JobStore(workers=1, lease_timeout_s=30.0)
    stop = threading.Event()
    try:
        run_id = store.submit(parse_run_request(remote_body))
        lurker = store.fleet.register(name="lurker")["worker"]
        abandoned = None
        while abandoned is None:
            abandoned = store.fleet.lease(lurker, wait_s=1.0)
        # Expire the abandoned lease deterministically — sweep as if the
        # deadline already passed (no other lease is active yet, and the
        # heartbeat deadline is far beyond this horizon).
        store.fleet.expire(time_module.monotonic() + 31.0)

        def drive():
            worker = store.fleet.register(name="driver")["worker"]
            while not stop.is_set():
                try:
                    grant = store.fleet.lease(worker, wait_s=0.2)
                except Exception:
                    return
                if grant is None:
                    continue
                outcome = _execute_grant(grant)
                try:
                    store.fleet.complete(grant["lease"], worker, **outcome)
                except Exception:
                    pass

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        events = _drain(store, run_id)
        assert events[-1]["event"] == "report"
        assert events[-1]["report"] == report
        leases = [e for e in events if e["event"] == "lease"]
        assert {e["cell"] for e in leases} == set(report["tenants"])
        expired = [e for e in events if e["event"] == "lease_expired"]
        assert [(e["cell"], e["attempt"], e["requeued"]) for e in expired] == [
            (abandoned["cell"], 1, True)
        ]
        assert any(
            e["cell"] == abandoned["cell"] and e["attempt"] == 2
            for e in leases
        )
    finally:
        stop.set()
        store.close()
        driver.join(timeout=10)
    seen.update(e["event"] for e in events)

    # Everything the schema declares was actually observed.
    assert seen == set(event_kinds())


# -- streamed vs batched carry identical counter totals -----------------------


@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=1023),
    tenants=st.integers(min_value=2, max_value=5),
)
def test_streamed_and_batched_counter_totals_match(seed, tenants):
    body = {
        "app": "wc",
        "seed": seed,
        "synth": {
            "tenants": tenants, "duration_s": 10,
            "mean_rpm": 40, "seed": seed,
        },
    }
    totals = {}
    for stream in (True, False):
        store = JobStore(workers=1)
        try:
            run_id = store.submit(
                parse_run_request(dict(body, stream=stream))
            )
            events = _drain(store, run_id)
        finally:
            store.close()
        report = next(e for e in events if e["event"] == "report")["report"]
        counters = {
            e["name"]: e["value"] for e in events if e["event"] == "counter"
        }
        assert counters["requests_offered"] == report["offered"]
        assert counters["requests_completed"] == report["completed"]
        assert counters["requests_failed"] == report["failed"]
        assert counters["cells_completed"] == sum(
            1 for e in events if e["event"] == "cell"
        )
        totals[stream] = counters
    assert totals[True] == totals[False]
