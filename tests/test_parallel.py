"""Tests for the sharded parallel replay engine (`repro.parallel`)."""

import pytest

from repro.loadgen.trace import InvocationTrace, synthesize_trace
from repro.parallel import (
    ReplaySpec,
    StreamingMerge,
    TenantShardPolicy,
    TimeSliceShardPolicy,
    get_shard_policy,
    merge_shard_results,
    partition_trace,
    replay_cell,
    run_parallel_replay,
)
from repro.parallel.engine import ShardResult

MIXED_CSV = """at_s,tenant,app,input_bytes,fanout,seed
0.0,a,wc,4MB,4,0
0.7,b,etl,2MB,,1
1.5,a,wc,2MB,2,2
2.2,c,ml_ensemble,,,0
3.0,b,etl,1MB,,3
4.1,c,ml_ensemble,2MB,,1
"""


@pytest.fixture(scope="module")
def mixed_trace():
    return InvocationTrace.from_csv(MIXED_CSV, name="mixed")


# -- policies -----------------------------------------------------------------


def test_tenant_policy_splits_per_tenant(mixed_trace):
    cells = TenantShardPolicy().split(mixed_trace)
    assert [key for key, _ in cells] == ["a", "b", "c"]
    for key, cell in cells:
        assert all(e.tenant == key for e in cell.events)
    assert sum(len(cell) for _, cell in cells) == len(mixed_trace)


def test_timeslice_policy_splits_by_window(mixed_trace):
    cells = TimeSliceShardPolicy(slice_s=2.0).split(mixed_trace)
    keys = [key for key, _ in cells]
    assert keys == ["slice000000", "slice000001", "slice000002"]
    for _, cell in cells:
        starts = {int(e.at_s // 2.0) for e in cell.events}
        assert len(starts) == 1


def test_policy_registry_specs():
    assert isinstance(get_shard_policy("tenant"), TenantShardPolicy)
    policy = get_shard_policy("timeslice:30")
    assert isinstance(policy, TimeSliceShardPolicy)
    assert policy.slice_s == 30.0
    with pytest.raises(ValueError):
        get_shard_policy("tenant:5")
    with pytest.raises(ValueError):
        get_shard_policy("timeslice:-1")
    with pytest.raises(ValueError):
        get_shard_policy("bogus")


def test_partition_is_stable_and_complete(mixed_trace):
    batches_a = partition_trace(mixed_trace, 3)
    batches_b = partition_trace(mixed_trace, 3)
    keys_a = [[key for key, _ in batch] for batch in batches_a]
    keys_b = [[key for key, _ in batch] for batch in batches_b]
    assert keys_a == keys_b  # hash assignment is process-invariant
    flat = sorted(key for batch in batches_a for key, _ in batch)
    assert flat == ["a", "b", "c"]
    with pytest.raises(ValueError):
        partition_trace(mixed_trace, 0)


# -- spec ---------------------------------------------------------------------


def test_cell_seeds_differ_by_cell_not_by_shard_count():
    spec = ReplaySpec(seed=3)
    assert spec.cell_seed("a") == ReplaySpec(seed=3).cell_seed("a")
    assert spec.cell_seed("a") != spec.cell_seed("b")
    assert spec.cell_seed("a") != ReplaySpec(seed=4).cell_seed("a")


def test_spec_rejects_appless_cell():
    spec = ReplaySpec()  # no default_app
    trace = InvocationTrace.from_events([{"at_s": 0.0}])
    with pytest.raises(ValueError):
        spec.build_setup(trace, "default")


# -- engine -------------------------------------------------------------------


def test_replay_cell_prefixes_request_ids(mixed_trace):
    cells = TenantShardPolicy().split(mixed_trace)
    key, cell_trace = cells[0]
    result = replay_cell(ReplaySpec(), key, cell_trace)
    assert result.key == "a"
    assert result.offered == 2
    assert all(r.request_id.startswith("a/") for r in result.records)
    assert set(result.tenant_of.values()) == {"a"}


def test_shard_count_does_not_change_report(mixed_trace):
    """The ISSUE's acceptance bar: --shards 4 == --shards 1, bit-identical."""
    spec = ReplaySpec()
    reports = [
        run_parallel_replay(mixed_trace, spec, shards=shards, workers=1).to_dict()
        for shards in (1, 2, 4)
    ]
    assert reports[0] == reports[1] == reports[2]


def test_worker_processes_do_not_change_report(mixed_trace):
    spec = ReplaySpec()
    serial = run_parallel_replay(mixed_trace, spec, shards=1, workers=1)
    parallel = run_parallel_replay(mixed_trace, spec, shards=3, workers=2)
    assert serial.to_dict() == parallel.to_dict()
    assert parallel.shards == 3 and parallel.workers == 2
    assert parallel.cell_count == 3
    assert parallel.wall_s > 0
    assert parallel.events_per_s() > 0


def test_merged_report_preserves_breakdowns(mixed_trace):
    result = run_parallel_replay(mixed_trace, ReplaySpec(), shards=2, workers=1)
    report = result.to_dict()
    assert report["offered"] == len(mixed_trace)
    assert report["completed"] == len(mixed_trace)
    assert set(report["tenants"]) == {"a", "b", "c"}
    assert report["tenants"]["a"]["offered"] == 2
    assert set(report["workflows"]) == {"wordcount", "etl", "ml_ensemble"}
    assert report["replay"] == {"policy": "tenant", "cells": 3}
    assert report["usage"]["completed_requests"] == len(mixed_trace)
    # duration_s is the whole trace's span, not any one cell's.
    assert report["duration_s"] == mixed_trace.duration_s


def test_merge_order_is_shard_invariant(mixed_trace):
    """merge_shard_results depends on cells, not on their batching."""
    spec = ReplaySpec()
    cells = TenantShardPolicy().split(mixed_trace)
    results = [replay_cell(spec, key, cell) for key, cell in cells]
    one_shard = merge_shard_results(
        [ShardResult(index=0, cells=list(results), wall_s=0.0)],
        mixed_trace, spec,
    )
    scattered = merge_shard_results(
        [
            ShardResult(index=0, cells=[results[2]], wall_s=0.0),
            ShardResult(index=1, cells=[results[0]], wall_s=0.0),
            ShardResult(index=2, cells=[results[1]], wall_s=0.0),
        ],
        mixed_trace, spec,
    )
    assert one_shard.to_dict() == scattered.to_dict()
    assert [r.request_id for r in one_shard.records] == [
        r.request_id for r in scattered.records
    ]


def test_streaming_merge_is_arrival_order_insensitive(mixed_trace):
    """Work stealing completes cells in any order; the fold canonicalizes."""
    from itertools import permutations

    spec = ReplaySpec()
    results = [
        replay_cell(spec, key, cell)
        for key, cell in TenantShardPolicy().split(mixed_trace)
    ]
    reference = None
    for order in permutations(range(len(results))):
        merge = StreamingMerge(mixed_trace, spec)
        for index in order:
            merge.add(results[index])
        report = merge.finalize().to_dict()
        if reference is None:
            reference = report
        assert report == reference, order


def test_streaming_merge_rejects_duplicate_cells(mixed_trace):
    spec = ReplaySpec()
    key, cell = TenantShardPolicy().split(mixed_trace)[0]
    result = replay_cell(spec, key, cell)
    merge = StreamingMerge(mixed_trace, spec)
    merge.add(result)
    with pytest.raises(ValueError):
        merge.add(result)


def test_stream_flag_never_changes_report(mixed_trace):
    """Streamed work stealing == static batching, byte for byte."""
    from repro.metrics.report import render_json

    spec = ReplaySpec()
    batched = run_parallel_replay(
        mixed_trace, spec, shards=3, workers=2, stream=False
    )
    streamed = run_parallel_replay(
        mixed_trace, spec, shards=3, workers=2, stream=True
    )
    assert render_json(batched.to_dict()) == render_json(streamed.to_dict())
    assert batched.streamed is False and streamed.streamed is True
    import sys

    if sys.platform != "win32":  # max_rss_mb() is documented 0.0 there
        assert streamed.rss_mb > 0


def test_timeslice_policy_also_shard_invariant(mixed_trace):
    spec = ReplaySpec()
    a = run_parallel_replay(
        mixed_trace, spec, shards=1, workers=1, policy="timeslice:2"
    )
    b = run_parallel_replay(
        mixed_trace, spec, shards=3, workers=1, policy="timeslice:2"
    )
    assert a.to_dict() == b.to_dict()
    assert a.policy_name == "timeslice"


def test_synthetic_trace_replay_deterministic_across_runs():
    trace = synthesize_trace(
        tenants=4, duration_s=20.0, mean_rpm=30, apps=["wc"], seed=11
    )
    spec = ReplaySpec(default_app="wc", seed=5)
    first = run_parallel_replay(trace, spec, shards=4, workers=1)
    second = run_parallel_replay(trace, spec, shards=4, workers=1)
    assert first.to_dict() == second.to_dict()
    # A different root seed steers every cell's world differently.
    reseeded = run_parallel_replay(
        trace, ReplaySpec(default_app="wc", seed=6), shards=4, workers=1
    )
    assert reseeded.to_dict()["latency"] != first.to_dict()["latency"]


def test_appless_trace_requires_default_app():
    trace = InvocationTrace.from_events([{"at_s": 0.0, "tenant": "a"}])
    with pytest.raises(ValueError):
        run_parallel_replay(trace, ReplaySpec(), shards=2, workers=1)


def test_empty_trace_merges_to_empty_report():
    trace = InvocationTrace(events=[], name="empty")
    result = run_parallel_replay(trace, ReplaySpec(default_app="wc"), shards=4)
    assert result.offered == 0
    assert result.records == []
    assert result.usage is None
    assert result.cell_count == 0
    assert result.to_dict()["latency"] is None
