"""Tests for the Figure-7 DSL parser."""

import pytest

from repro.workflow import DslError, EdgeKind, parse_size, parse_workflow
from repro.cluster.telemetry import KB, MB


MINIMAL = """
workflow_name: demo
dataflows:
  first:
    compute: base=0.1
    output: ratio=1.0
    output_datas:
      out:
        type: NORMAL
        destination: second
  second:
    compute: base=0.2 per_mb=0.05
    output: fixed=64KB
    output_datas:
      result:
        type: NORMAL
        destination: $USER
"""


def test_parse_minimal_workflow():
    wf = parse_workflow(MINIMAL)
    assert wf.name == "demo"
    assert wf.entry == "first"
    assert set(wf.function_names()) == {"first", "second"}
    edge = wf.functions["first"].edges[0]
    assert edge.kind is EdgeKind.NORMAL
    assert edge.destination == "second"


def test_parse_compute_and_output_models():
    wf = parse_workflow(MINIMAL)
    second = wf.functions["second"]
    assert second.profile.compute.base_core_s == pytest.approx(0.2)
    assert second.profile.compute.per_input_mb_core_s == pytest.approx(0.05)
    assert second.output.fixed_bytes == pytest.approx(64 * KB)


def test_parse_size_literals():
    assert parse_size("4MB") == 4 * MB
    assert parse_size("64KB") == 64 * KB
    assert parse_size("123") == 123.0
    assert parse_size("2.5MB") == 2.5 * MB
    with pytest.raises(DslError):
        parse_size("4XB")


def test_comments_and_blank_lines_ignored():
    text = MINIMAL.replace(
        "compute: base=0.1", "compute: base=0.1  # inline comment"
    ) + "\n# trailing comment\n\n"
    wf = parse_workflow(text)
    assert wf.functions["first"].profile.compute.base_core_s == pytest.approx(0.1)


def test_missing_workflow_name_rejected():
    with pytest.raises(DslError, match="workflow_name"):
        parse_workflow("dataflows:\n  a:\n    compute: base=0.1\n")


def test_missing_dataflows_rejected():
    with pytest.raises(DslError, match="dataflows"):
        parse_workflow("workflow_name: x\n")


def test_missing_compute_rejected():
    text = """
workflow_name: x
dataflows:
  a:
    output: ratio=1
"""
    with pytest.raises(DslError, match="compute"):
        parse_workflow(text)


def test_unknown_compute_field_rejected():
    text = MINIMAL.replace("base=0.1", "base=0.1 warp=9")
    with pytest.raises(DslError, match="unknown fields"):
        parse_workflow(text)


def test_duplicate_key_rejected():
    text = MINIMAL + "workflow_name: again\n"
    with pytest.raises(DslError, match="duplicate"):
        parse_workflow(text)


def test_bad_line_reports_line_number():
    text = "workflow_name: x\ndataflows:\n  a:\n    just words no colon here\n"
    text = text.replace("no colon here", "no colon here".replace(":", ""))
    with pytest.raises(DslError, match="line 4"):
        parse_workflow(text)


def test_switch_edge_with_builtin_selector():
    text = """
workflow_name: router
dataflows:
  route:
    compute: base=0.05
    output: ratio=1.0
    output_datas:
      decision:
        type: SWITCH
        destination: small | large
        selector: round_robin
  small:
    compute: base=0.01
    output: fixed=1KB
    output_datas:
      out:
        type: NORMAL
        destination: $USER
  large:
    compute: base=0.5
    output: fixed=1KB
    output_datas:
      out:
        type: NORMAL
        destination: $USER
"""
    wf = parse_workflow(text)
    edge = wf.functions["route"].edges[0]
    assert edge.kind is EdgeKind.SWITCH
    assert edge.destinations == ("small", "large")
    assert edge.selector(0, 0) == 0
    assert edge.selector(1, 0) == 1


def test_unknown_selector_rejected():
    text = MINIMAL.replace(
        "type: NORMAL\n        destination: second",
        "type: SWITCH\n        destination: second | second2\n        selector: coin",
    )
    with pytest.raises(DslError, match="selector"):
        parse_workflow(text)


def test_dangling_destination_fails_validation():
    text = MINIMAL.replace("destination: second", "destination: ghost")
    with pytest.raises(Exception, match="undefined|invalid"):
        parse_workflow(text)


def test_wordcount_dsl_builds():
    from repro.apps import get_app

    wf = get_app("wc").build()
    assert wf.entry == "wordcount_start"
    assert wf.topological_order() == [
        "wordcount_start",
        "wordcount_count",
        "wordcount_merge",
    ]
    start_edge = wf.functions["wordcount_start"].edges[0]
    assert start_edge.kind is EdgeKind.FOREACH
    count_edge = wf.functions["wordcount_count"].edges[0]
    assert count_edge.kind is EdgeKind.MERGE
