"""Tests for time integrals and interval recorders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.cluster.telemetry import IntervalRecorder, TimeIntegral, overlap_seconds


def test_integral_of_constant_level():
    env = Environment()
    meter = TimeIntegral(env)
    meter.add(5.0)

    def advance(env):
        yield env.timeout(10.0)

    env.process(advance(env))
    env.run()
    assert meter.integral() == pytest.approx(50.0)


def test_integral_piecewise():
    env = Environment()
    meter = TimeIntegral(env)

    def scenario(env):
        meter.add(2.0)          # level 2 on [0, 4)
        yield env.timeout(4.0)
        meter.add(3.0)          # level 5 on [4, 6)
        yield env.timeout(2.0)
        meter.set(0.0)          # level 0 afterwards
        yield env.timeout(10.0)

    env.process(scenario(env))
    env.run()
    assert meter.integral() == pytest.approx(2 * 4 + 5 * 2)
    assert meter.peak == pytest.approx(5.0)


def test_integral_negative_level_rejected():
    env = Environment()
    meter = TimeIntegral(env)
    meter.add(1.0)
    with pytest.raises(ValueError):
        meter.add(-5.0)  # beyond the float-noise clamp


def test_integral_clamps_float_noise():
    env = Environment()
    meter = TimeIntegral(env)
    meter.add(1.0)
    meter.add(-1.0 - 1e-7)  # sub-unit residue is forgiven
    assert meter.level == 0.0


@settings(max_examples=50, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=10.0),  # duration
            st.floats(min_value=0.0, max_value=100.0),  # next level
        ),
        min_size=1,
        max_size=20,
    )
)
def test_property_integral_matches_manual_sum(steps):
    env = Environment()
    meter = TimeIntegral(env)
    expected = 0.0
    level = 0.0

    def scenario(env):
        nonlocal expected, level
        for duration, next_level in steps:
            meter.set(next_level)
            level = next_level
            expected += level * duration
            yield env.timeout(duration)

    env.process(scenario(env))
    env.run()
    assert meter.integral() == pytest.approx(expected, rel=1e-9, abs=1e-9)


def test_interval_recorder_busy_fraction():
    env = Environment()
    rec = IntervalRecorder(env)

    def scenario(env):
        rec.begin("a", "cpu")
        yield env.timeout(2.0)
        rec.end("a")
        yield env.timeout(2.0)
        rec.begin("b", "cpu")
        yield env.timeout(1.0)
        rec.end("b")
        yield env.timeout(5.0)

    env.process(scenario(env))
    env.run()
    assert rec.busy_fraction("cpu") == pytest.approx(3.0 / 10.0)
    assert rec.labelled("net") == []


def test_interval_recorder_double_begin_rejected():
    env = Environment()
    rec = IntervalRecorder(env)
    rec.begin("k", "cpu")
    with pytest.raises(ValueError):
        rec.begin("k", "cpu")


def test_overlap_seconds_basic():
    a = [(0.0, 5.0)]
    b = [(3.0, 8.0)]
    assert overlap_seconds(a, b) == pytest.approx(2.0)


def test_overlap_seconds_disjoint():
    assert overlap_seconds([(0, 1)], [(2, 3)]) == 0.0


def test_overlap_seconds_merges_unions():
    a = [(0.0, 2.0), (1.0, 4.0)]   # union [0,4]
    b = [(3.0, 5.0), (3.5, 6.0)]   # union [3,6]
    assert overlap_seconds(a, b) == pytest.approx(1.0)
