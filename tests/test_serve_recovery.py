"""Crash-recovery integration harness for ``repro serve --journal``.

The acceptance test for the durable run journal, end to end and out of
process: boot the real server as a subprocess with a journal, submit a
multi-cell run, SIGKILL the process mid-run — gated on the journal
showing a threshold of completed cells, never on sleeps — then restart
on the same journal and assert the resumed run finishes with a report
byte-identical to an uninterrupted control run, with the already-
completed cells *not* re-executed (each cell key appears exactly once
in the journal across both incarnations).
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.metrics.report import render_json
from repro.metrics.telemetry import validate_event
from repro.serve import load_journal, parse_run_request
from repro.serve.jobs import JobStore

ROOT = Path(__file__).resolve().parent.parent

#: ~1800 events over 8 tenant cells, several seconds of serial replay:
#: wide enough that a SIGKILL lands reliably between the Nth journaled
#: cell and completion, on fast and slow machines alike.
RUN_BODY = {
    "app": "wc",
    "seed": 7,
    "workers": 1,
    "synth": {"tenants": 8, "duration_s": 60, "mean_rpm": 120, "seed": 5},
}

#: SIGKILL once this many cells are journaled (of 8).
KILL_AFTER_CELLS = 2

_LISTENING = re.compile(r"listening on (http://[0-9.]+:\d+)")


def _start_server(journal_path):
    """Boot ``repro serve`` as a subprocess; returns (process, base_url).

    ``--port 0`` lets the OS pick a free port; the launch banner on
    stdout carries the resolved URL.  stderr (per-request logs) goes to
    DEVNULL so the pipe can never fill up and stall the server.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "1",
            "--journal", str(journal_path),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        match = _LISTENING.search(line)
        assert match, f"no listening banner, got: {line!r}"
        return proc, match.group(1)
    except Exception:
        proc.kill()
        proc.wait()
        raise


def _request(url, body=None, timeout=10):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if body else {},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def _await(predicate, timeout_s, what):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value is not None:
            return value
        time.sleep(0.02)
    raise AssertionError(f"timed out after {timeout_s}s waiting for {what}")


def _journaled_cells(journal_path, run_id):
    """Cell keys journaled for one run, in append order, duplicates kept.

    Reads the raw file rather than :func:`load_journal` so duplicate
    records (= re-executed cells) stay visible to the assertions.
    """
    keys = []
    if not journal_path.exists():
        return keys
    raw = journal_path.read_text(errors="replace")
    lines = raw.split("\n")[:-1]  # drop the (possibly torn) tail
    for line in lines:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("rec") == "cell" and record.get("run") == run_id:
            keys.append(record["key"])
    return keys


def _journaled_max_seq(journal_path, run_id):
    """Highest event ``seq`` any journaled record for one run carries."""
    max_seq = -1
    raw = journal_path.read_text(errors="replace")
    for line in raw.split("\n")[:-1]:  # drop the (possibly torn) tail
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("run") == run_id and isinstance(record.get("seq"), int):
            max_seq = max(max_seq, record["seq"])
    return max_seq


def _events(base, run_id):
    """Drain the NDJSON event stream of a terminal run, skipping
    keepalive comment lines."""
    with urllib.request.urlopen(
        f"{base}/v1/runs/{run_id}/events", timeout=30
    ) as resp:
        return [
            json.loads(line)
            for line in resp.read().decode("utf-8").splitlines()
            if line and not line.startswith(":")
        ]


def _control_report(body=RUN_BODY):
    """The uninterrupted run, in process: the byte-identical target."""
    store = JobStore(workers=1)
    try:
        run_id = store.submit(parse_run_request(body))
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            snap = store.snapshot(run_id)
            if snap["status"] == "done":
                return render_json(snap["report"])
            assert snap["status"] != "failed", snap.get("error")
            time.sleep(0.05)
        raise AssertionError("control run did not finish")
    finally:
        store.close()


def test_sigkill_mid_run_resumes_to_byte_identical_report(tmp_path):
    journal_path = tmp_path / "journal.jsonl"
    control = _control_report()

    # -- first incarnation: submit, then die mid-run --------------------------
    proc, base = _start_server(journal_path)
    try:
        accepted = _request(f"{base}/v1/runs", RUN_BODY)
        run_id = accepted["id"]
        assert accepted["status"] == "queued"

        # Gate on durable progress, not on time: kill only once the
        # journal proves >= KILL_AFTER_CELLS cells finished, and the
        # run hasn't finished (the journal has no terminal record).
        def enough_progress():
            cells = _journaled_cells(journal_path, run_id)
            return cells if len(cells) >= KILL_AFTER_CELLS else None

        before_kill = _await(
            enough_progress, 60,
            f"{KILL_AFTER_CELLS} journaled cells",
        )
        state = load_journal(str(journal_path))
        assert not state.runs[run_id].finished, (
            "run finished before the kill; workload too small for this "
            "machine"
        )
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    checkpointed = len(before_kill)
    assert len(set(before_kill)) == checkpointed  # no dupes pre-kill
    # Every journal record carries the seq of the event batch it made
    # durable; the pre-crash high-water mark anchors the monotonicity
    # assertion after the resume.
    pre_crash_seq = _journaled_max_seq(journal_path, run_id)
    assert pre_crash_seq > 0

    # -- second incarnation: same journal, resume, finish ---------------------
    proc, base = _start_server(journal_path)
    try:
        # The run is visible across the restart (GET /v1/runs survives).
        listing = _request(f"{base}/v1/runs")
        assert any(run["id"] == run_id for run in listing["runs"]), listing

        def finished():
            snap = _request(f"{base}/v1/runs/{run_id}")
            return snap if snap["status"] in ("done", "failed") else None

        snap = _await(finished, 120, "resumed run to finish")
        assert snap["status"] == "done", snap.get("error")
        assert snap["recovered"] is True
        assert snap["cells_done"] == snap["cells"] == 8

        # The resumed report is byte-identical to the uninterrupted run.
        assert render_json(snap["report"]) == control

        # Event seq is monotonic across the crash-resume boundary: the
        # recovered incarnation's stream starts exactly one past the
        # highest seq the first incarnation journaled — it must never
        # restart from len(job.events) and hand followers colliding or
        # regressing seqs.
        events = _events(base, run_id)
        for event in events:
            validate_event(event)
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(set(seqs)), "seq regressed in resumed stream"
        assert seqs[0] == pre_crash_seq + 1
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()

    # -- the journal proves no re-execution -----------------------------------
    after = _journaled_cells(journal_path, run_id)
    assert sorted(set(after)) == sorted(f"tenant{i}" for i in range(8))
    # Exactly one cell record per key across both incarnations: the
    # checkpointed cells were folded from the journal, not re-executed.
    assert len(after) == 8, (
        f"cells journaled twice: {sorted(k for k in after if after.count(k) > 1)}"
    )
    assert after[:checkpointed] == before_kill  # append-only survived the kill

    state = load_journal(str(journal_path))
    assert state.runs[run_id].status == "done"
    assert render_json(state.runs[run_id].report) == control


def test_sigkill_mid_degraded_run_resumes_only_unjournaled_cells(tmp_path):
    """Crash-resume × retry policy, out of process: a run degraded by a
    poisoned cell (``on_cell_failure: skip``) is SIGKILLed mid-run; the
    restart folds the journaled cells back without re-executing them,
    replays only the unjournaled ones — the poisoned cell fails again,
    deterministically — and lands on a degraded report byte-identical
    to an uninterrupted degraded run's."""
    journal_path = tmp_path / "journal.jsonl"
    body = dict(
        RUN_BODY,
        retry={"max_attempts": 1},
        faults=[{"kind": "poison", "cell": "tenant0", "attempt": 0}],
        on_cell_failure="skip",
    )
    control = _control_report(body)

    proc, base = _start_server(journal_path)
    try:
        run_id = _request(f"{base}/v1/runs", body)["id"]

        def enough_progress():
            cells = _journaled_cells(journal_path, run_id)
            return cells if len(cells) >= KILL_AFTER_CELLS else None

        before_kill = _await(
            enough_progress, 60, f"{KILL_AFTER_CELLS} journaled cells",
        )
        assert not load_journal(str(journal_path)).runs[run_id].finished
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # The poisoned cell never journals a residue — only survivors do.
    assert "tenant0" not in before_kill

    proc, base = _start_server(journal_path)
    try:
        def finished():
            snap = _request(f"{base}/v1/runs/{run_id}")
            return snap if snap["status"] in ("done", "failed") else None

        snap = _await(finished, 120, "resumed degraded run to finish")
        assert snap["status"] == "done", snap.get("error")
        assert snap["recovered"] is True
        assert snap["degraded"] is True
        assert render_json(snap["report"]) == control
        failed = snap["report"]["replay"]["failed_cells"]
        assert [(f["cell"], f["kind"], f["attempts"]) for f in failed] == [
            ("tenant0", "poison", 1)
        ]
        events = _events(base, run_id)
        for event in events:
            validate_event(event)
        assert events[-1]["event"] == "degraded"
        assert events[-1]["failed_cells"] == 1
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()

    # One cell record per *surviving* key across both incarnations: the
    # checkpointed cells folded from the journal, the poisoned cell
    # re-ran (and failed again) without ever journaling.
    after = _journaled_cells(journal_path, run_id)
    assert sorted(set(after)) == sorted(f"tenant{i}" for i in range(1, 8))
    assert len(after) == 7, (
        f"cells journaled twice: "
        f"{sorted(k for k in after if after.count(k) > 1)}"
    )
    assert after[: len(before_kill)] == before_kill


def test_restart_restores_finished_run_read_only(tmp_path):
    """No crash at all: a completed run survives a clean restart with
    its report byte-identical, served from the journal alone."""
    journal_path = tmp_path / "journal.jsonl"
    body = {"app": "wc", "seed": 3, "synth": {
        "tenants": 3, "duration_s": 20, "mean_rpm": 60, "seed": 1,
    }}

    proc, base = _start_server(journal_path)
    try:
        run_id = _request(f"{base}/v1/runs", body)["id"]
        snap = _await(
            lambda: (
                lambda s: s if s["status"] in ("done", "failed") else None
            )(_request(f"{base}/v1/runs/{run_id}")),
            120, "run to finish",
        )
        assert snap["status"] == "done", snap.get("error")
        first = render_json(snap["report"])
    finally:
        proc.terminate()
        proc.wait(timeout=30)

    proc, base = _start_server(journal_path)
    try:
        snap = _request(f"{base}/v1/runs/{run_id}")
        assert snap["status"] == "done"
        assert snap["recovered"] is True
        assert render_json(snap["report"]) == first
        # New submissions keep working and get a fresh id.
        new_id = _request(f"{base}/v1/runs", body)["id"]
        assert new_id != run_id
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
