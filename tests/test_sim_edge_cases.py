"""Edge-case tests for the kernel under interrupts and cancellations."""

import pytest

from repro.sim import Environment, Interrupt, Resource, Store
from repro.experiments.registry import ExperimentResult


def test_interrupt_while_queued_on_resource():
    """An interrupted waiter must not hold a phantom place in the queue."""
    env = Environment()
    resource = Resource(env, capacity=1)
    outcomes = []

    def holder(env):
        with resource.request() as req:
            yield req
            yield env.timeout(10)

    def impatient(env):
        request = resource.request()
        try:
            yield request
            outcomes.append("granted")
        except Interrupt:
            request.cancel()
            outcomes.append("walked away")

    def patient(env):
        with resource.request() as req:
            yield req
            outcomes.append(("patient", env.now))

    env.process(holder(env))
    victim = env.process(impatient(env))
    env.process(patient(env))

    def interrupter(env):
        yield env.timeout(1)
        victim.interrupt()

    env.process(interrupter(env))
    env.run()
    assert "walked away" in outcomes
    assert ("patient", 10) in outcomes


def test_interrupt_while_waiting_on_store():
    env = Environment()
    store = Store(env)
    caught = []

    def consumer(env):
        get_event = store.get()
        try:
            yield get_event
        except Interrupt:
            get_event.cancel()  # withdraw, or the get would eat an item
            caught.append(env.now)

    victim = env.process(consumer(env))

    def interrupter(env):
        yield env.timeout(2)
        victim.interrupt()
        # Interrupt delivery is asynchronous: give it one tick so the
        # victim can withdraw its get before the item arrives.
        yield env.timeout(0.001)
        yield store.put("late")

    env.process(interrupter(env))
    env.run()
    assert caught == [2]
    # The interrupted getter must not consume the item.
    assert list(store.items) == ["late"]


def test_double_interrupt_is_safe():
    env = Environment()
    log = []

    def sleeper(env):
        for _ in range(2):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                log.append(interrupt.cause)

    victim = env.process(sleeper(env))

    def interrupter(env):
        yield env.timeout(1)
        victim.interrupt("first")
        yield env.timeout(1)
        victim.interrupt("second")

    env.process(interrupter(env))
    env.run(until=10)
    assert log == ["first", "second"]


def test_process_waiting_on_failed_process_propagates():
    env = Environment()
    seen = []

    def child(env):
        yield env.timeout(1)
        raise ValueError("child broke")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            seen.append(str(exc))

    env.process(parent(env))
    env.run()
    assert seen == ["child broke"]


def test_experiment_result_csv_roundtrip():
    result = ExperimentResult(
        "figX", "title", ["a", "b"], [[1, "x"], [2.5, "y"]]
    )
    csv_text = result.to_csv()
    lines = csv_text.strip().splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1,x"
    assert lines[2] == "2.5,y"


def test_cli_csv_export(tmp_path):
    from repro.experiments.__main__ import main

    exit_code = main(["fig13", "--csv-dir", str(tmp_path)])
    assert exit_code == 0
    written = sorted(p.name for p in tmp_path.iterdir())
    assert "fig13.csv" in written
    assert "fig13-gaps.csv" in written
    content = (tmp_path / "fig13-gaps.csv").read_text()
    assert content.startswith("system,")


def test_cli_lists_experiments(capsys):
    from repro.experiments.__main__ import main

    assert main([]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out and "fig19" in out
