"""End-to-end integration: every system executes every benchmark."""

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    DataFlowerConfig,
    DataFlowerSystem,
    Environment,
    FaasFlowSystem,
    ProductionSystem,
    RequestSpec,
    SonicSystem,
    round_robin,
    single_node,
)
from repro.apps import APP_ORDER, get_app

SYSTEMS = {
    "production": ProductionSystem,
    "faasflow": FaasFlowSystem,
    "sonic": SonicSystem,
    "dataflower": DataFlowerSystem,
}


def run_one(system_cls, app_name, **request_overrides):
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = system_cls(env, cluster)
    app = get_app(app_name)
    workflow = app.build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))
    request = RequestSpec(
        request_id="r1",
        input_bytes=request_overrides.get("input_bytes", app.default_input_bytes),
        fanout=request_overrides.get("fanout", app.default_fanout),
    )
    done = system.submit(workflow.name, request)
    record = env.run(until=done)
    return env, cluster, system, record


@pytest.mark.parametrize("system_name", list(SYSTEMS))
@pytest.mark.parametrize("app_name", APP_ORDER)
def test_single_request_completes(system_name, app_name):
    env, cluster, system, record = run_one(SYSTEMS[system_name], app_name)
    assert record.completed, record.error
    assert 0 < record.latency < 60.0
    # Every task ran exactly once and is timestamped sanely.
    for task in record.tasks:
        assert task.exec_end >= task.exec_start >= 0
        assert task.trigger_time >= task.ready_time


@pytest.mark.parametrize("app_name", APP_ORDER)
def test_dataflower_is_fastest_solo(app_name):
    latencies = {}
    for name, cls in SYSTEMS.items():
        _, _, _, record = run_one(cls, app_name)
        latencies[name] = record.latency
    assert latencies["dataflower"] < latencies["faasflow"], latencies
    assert latencies["dataflower"] < latencies["sonic"], latencies
    assert latencies["dataflower"] < latencies["production"], latencies


def test_production_platform_is_slowest_on_wc():
    lat = {}
    for name in ["production", "faasflow"]:
        _, _, _, record = run_one(SYSTEMS[name], "wc")
        lat[name] = record.latency
    # The centralized orchestrator's 63 ms per trigger dominates wc.
    assert lat["production"] > lat["faasflow"]


def test_trigger_overhead_ordering():
    """DataFlower's data-availability triggering beats control flow."""
    overheads = {}
    for name, cls in SYSTEMS.items():
        _, _, _, record = run_one(cls, "wc")
        non_entry = [t for t in record.tasks if t.function != "wordcount_start"]
        overheads[name] = sum(t.trigger_overhead for t in non_entry) / len(non_entry)
    assert overheads["dataflower"] < overheads["faasflow"] < overheads["production"]


@pytest.mark.parametrize("system_name", list(SYSTEMS))
def test_memory_usage_accounted(system_name):
    env, cluster, system, record = run_one(SYSTEMS[system_name], "wc")
    env.run(until=env.now + 1.0)
    assert cluster.total_memory_gbs() > 0


def test_dataflower_single_node_local_pipes():
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(
        env, cluster, DataFlowerConfig(input_local=True)
    )
    app = get_app("wc")
    workflow = app.build()
    system.deploy(workflow, single_node(workflow, cluster.workers))
    done = system.submit(
        workflow.name,
        RequestSpec("r1", input_bytes=app.default_input_bytes, fanout=4),
    )
    record = env.run(until=done)
    assert record.completed
    # Inter-function data never leaves the node: only the final result
    # (merge -> $USER at the gateway) may cross the network.
    assert system.router.stream_pushes <= 1
    assert system.router.local_pushes + system.router.socket_pushes >= 5


def test_dataflower_sink_memory_returns_to_zero():
    env, cluster, system, record = run_one(DataFlowerSystem, "wc")
    assert record.completed
    for engine in system.engines.values():
        assert engine.sink.resident_bytes() == 0
        assert engine.sink.entry_count() == 0


def test_dataflower_overlaps_compute_and_transfer():
    """The DLU starts pushing before the FLU completes (streaming)."""
    from repro.cluster.telemetry import overlap_seconds

    env, cluster, system, record = run_one(DataFlowerSystem, "vid")
    assert record.completed
    total_overlap = 0.0
    for deployment in system.deployments.values():
        for dispatcher in deployment.dispatchers.values():
            for container in dispatcher.pool.containers:
                cpu = container.intervals.labelled("cpu")
                net = container.intervals.labelled("net")
                total_overlap += overlap_seconds(cpu, net)
    assert total_overlap > 0


def test_faasflow_cache_released_at_request_end():
    env, cluster, system, record = run_one(FaasFlowSystem, "wc")
    assert record.completed
    for node in cluster.workers:
        assert node.cache_usage.level == pytest.approx(0.0)


def test_multiple_concurrent_requests():
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(env, cluster)
    app = get_app("wc")
    workflow = app.build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))
    events = [
        system.submit(
            workflow.name,
            RequestSpec(f"r{i}", input_bytes=app.default_input_bytes, fanout=4),
        )
        for i in range(10)
    ]
    env.run(until=env.all_of(events))
    assert all(r.completed for r in system.records)
    latencies = [r.latency for r in system.records]
    assert max(latencies) < 30.0
