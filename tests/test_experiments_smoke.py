"""Smoke tests: every registered experiment runs and yields sane tables."""

import pytest

from repro.experiments import experiment_ids, run_experiment, subsample
from repro.experiments.registry import ExperimentResult

#: The cheapest scale each experiment stays meaningful at.
CHEAP = 0.25


def test_registry_lists_every_paper_figure():
    ids = experiment_ids()
    for expected in [
        "fig2", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
        "fig16", "fig17", "fig18", "fig19",
    ]:
        assert expected in ids


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_scale_validation():
    with pytest.raises(ValueError):
        run_experiment("fig13", scale=0.0)
    with pytest.raises(ValueError):
        run_experiment("fig13", scale=1.5)


def test_subsample_keeps_ends():
    grid = [1, 2, 4, 8, 16, 32]
    small = subsample(grid, 0.3)
    assert small[0] == 1
    assert small[-1] == 32
    assert len(small) < len(grid)
    assert subsample(grid, 1.0) == grid


@pytest.mark.parametrize("experiment_id", ["fig2", "fig13", "fig15", "fig19"])
def test_cheap_experiments_run_end_to_end(experiment_id):
    results = run_experiment(experiment_id, scale=CHEAP)
    assert results
    for result in results:
        assert isinstance(result, ExperimentResult)
        assert result.rows
        assert len(result.headers) == len(result.rows[0])
        rendered = result.render()
        assert result.experiment_id in rendered


def test_fig13_result_shape():
    results = run_experiment("fig13", scale=1.0)
    gaps = next(r for r in results if r.experiment_id == "fig13-gaps")
    systems = [row[0] for row in gaps.rows]
    assert systems == ["dataflower", "faasflow", "sonic"]


def test_fig19_reductions_positive():
    results = run_experiment("fig19", scale=1.0)
    table = results[0]
    reduction_index = list(table.headers).index("reduction_pct")
    for row in table.rows:
        assert row[reduction_index] > 0
