"""Tests for the benchmark definitions and their paper calibration."""

import pytest

from repro.apps import APP_ORDER, EXTRA_APPS, all_apps, app_names, get_app
from repro.cluster.telemetry import MB
from repro.workflow import RequestSpec, TaskGraph, validate
from repro.workflow.visualize import render_task_graph, render_workflow


def test_registry_has_paper_order():
    assert APP_ORDER == ["img", "vid", "svd", "wc"]
    assert [app.short_name for app in all_apps()] == APP_ORDER


def test_registry_extensions_listed_after_paper_set():
    assert app_names() == APP_ORDER + EXTRA_APPS
    assert EXTRA_APPS == ["ml_ensemble", "etl"]


def test_unknown_app_rejected():
    with pytest.raises(KeyError):
        get_app("nope")


@pytest.mark.parametrize("name", APP_ORDER + EXTRA_APPS)
def test_every_app_validates(name):
    workflow = get_app(name).build()
    validate(workflow)  # raises on any structural problem


@pytest.mark.parametrize("name", APP_ORDER + EXTRA_APPS)
def test_every_app_has_sane_defaults(name):
    app = get_app(name)
    assert app.default_input_bytes > 0
    assert app.default_fanout >= 1
    assert app.title
    assert app.build().name == app.workflow_name


def test_wc_shape():
    workflow = get_app("wc").build()
    graph = TaskGraph(workflow, RequestSpec("r", input_bytes=4 * MB, fanout=4))
    assert len(graph.tasks_of("wordcount_start")) == 1
    assert len(graph.tasks_of("wordcount_count")) == 4
    assert len(graph.tasks_of("wordcount_merge")) == 1


def test_vid_and_svd_are_fan_out_fan_in():
    for name, middle in [("vid", "vid_transcode"), ("svd", "svd_factorize")]:
        app = get_app(name)
        workflow = app.build()
        graph = TaskGraph(
            workflow,
            RequestSpec("r", input_bytes=app.default_input_bytes,
                        fanout=app.default_fanout),
        )
        assert len(graph.tasks_of(middle)) == app.default_fanout
        assert len(graph.terminal_tasks) == 1


def test_ml_ensemble_shape():
    app = get_app("ml_ensemble")
    workflow = app.build()
    graph = TaskGraph(workflow, RequestSpec("r", input_bytes=2 * MB, fanout=5))
    assert len(graph.tasks_of("ens_preprocess")) == 1
    assert len(graph.tasks_of("ens_model")) == 5
    assert len(graph.tasks_of("ens_vote")) == 1


def test_etl_is_a_two_level_shuffle():
    app = get_app("etl")
    workflow = app.build()
    graph = TaskGraph(
        workflow,
        RequestSpec("r", input_bytes=app.default_input_bytes,
                    fanout=app.default_fanout),
    )
    assert len(graph.tasks_of("etl_clean")) == app.default_fanout
    assert len(graph.tasks_of("etl_reduce")) == app.default_fanout
    assert len(graph.tasks_of("etl_shuffle")) == 1
    # The shuffle is the reduce-heavy step: it ingests every partition.
    shuffle = graph.tasks_of("etl_shuffle")[0]
    assert len(shuffle.inputs) == app.default_fanout
    assert shuffle.input_bytes > app.default_input_bytes / 2


def test_img_is_a_linear_chain():
    workflow = get_app("img").build()
    graph = TaskGraph(workflow, RequestSpec("r", input_bytes=4 * MB))
    assert len(graph.tasks) == 4
    for task in graph.tasks:
        assert len([e for e in task.outputs if e.dst is not None]) <= 1


def comm_comp_ratio(name):
    """Analytic comm/(comm+comp) on the production platform's data path.

    Uses each function's profile directly (container-bandwidth-limited
    double transfer through the backend) to sanity-check the Figure 2(a)
    calibration without running the simulator.
    """
    from repro.cluster.spec import ContainerSpec

    app = get_app(name)
    workflow = app.build()
    graph = TaskGraph(
        workflow,
        RequestSpec("r", input_bytes=app.default_input_bytes,
                    fanout=app.default_fanout),
    )
    comm = comp = 0.0
    for function_name in workflow.topological_order():
        tasks = graph.tasks_of(function_name)
        if not tasks:
            continue
        task = tasks[0]  # one branch representative (they run in parallel)
        profile = workflow.functions[function_name].profile
        spec = ContainerSpec(memory_mb=profile.memory_mb)
        bandwidth = spec.net_bytes_per_s
        comm += task.input_bytes / bandwidth + task.output_bytes / bandwidth
        comp += profile.compute.core_seconds(task.input_bytes) / spec.cpu_cores
    return comm / (comm + comp)


def test_calibration_matches_paper_ordering():
    """Figure 2(a): wc most communication-bound, img least."""
    ratios = {name: comm_comp_ratio(name) for name in APP_ORDER}
    assert ratios["wc"] > ratios["vid"] > ratios["svd"] > ratios["img"]
    assert ratios["wc"] > 0.7
    assert ratios["img"] < 0.4


def test_render_workflow_lists_every_function():
    workflow = get_app("wc").build()
    text = render_workflow(workflow)
    for name in workflow.function_names():
        assert name in text
    assert "FOREACH" in text and "MERGE" in text


def test_render_workflow_with_placement():
    from repro import Cluster, ClusterConfig, Environment, round_robin

    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    workflow = get_app("svd").build()
    placement = round_robin(workflow, cluster.workers)
    text = render_workflow(workflow, placement)
    assert "@worker1" in text


def test_render_task_graph_shows_bytes():
    workflow = get_app("wc").build()
    graph = TaskGraph(workflow, RequestSpec("r", input_bytes=4 * MB, fanout=2))
    text = render_task_graph(graph)
    assert "wordcount_count#0" in text
    assert "$USER" in text
    assert "KB" in text
