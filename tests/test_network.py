"""Tests for the fluid-flow network model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.cluster.network import FlowCancelled, NetworkFabric


def make_fabric():
    env = Environment()
    return env, NetworkFabric(env)


def test_single_flow_runs_at_capacity():
    env, fabric = make_fabric()
    link = fabric.link("l", 100.0)
    flow = fabric.transfer(1000.0, [link])
    env.run(until=flow.done)
    assert env.now == pytest.approx(10.0)


def test_rate_cap_limits_flow():
    env, fabric = make_fabric()
    link = fabric.link("l", 100.0)
    flow = fabric.transfer(1000.0, [link], rate_cap=50.0)
    env.run(until=flow.done)
    assert env.now == pytest.approx(20.0)


def test_two_flows_share_equally():
    env, fabric = make_fabric()
    link = fabric.link("l", 100.0)
    f1 = fabric.transfer(1000.0, [link])
    f2 = fabric.transfer(1000.0, [link])
    env.run(until=f1.done)
    # Both at 50 B/s: each takes 20 s.
    assert env.now == pytest.approx(20.0)
    env.run(until=f2.done)
    assert env.now == pytest.approx(20.0)


def test_departure_speeds_up_remaining_flow():
    env, fabric = make_fabric()
    link = fabric.link("l", 100.0)
    small = fabric.transfer(500.0, [link])
    big = fabric.transfer(1500.0, [link])
    env.run(until=small.done)
    # Shared at 50 B/s until small finishes at t=10 (500B each moved).
    assert env.now == pytest.approx(10.0)
    env.run(until=big.done)
    # big has 1000B left at full 100 B/s -> 10 more seconds.
    assert env.now == pytest.approx(20.0)


def test_late_arrival_slows_flow():
    env, fabric = make_fabric()
    link = fabric.link("l", 100.0)
    first = fabric.transfer(1000.0, [link])

    def late(env):
        yield env.timeout(5.0)
        second = fabric.transfer(250.0, [link])
        yield second.done

    proc = env.process(late(env))
    env.run(until=first.done)
    # first: 500B in 5s at 100, then shares 50 B/s. second (250B at 50 B/s)
    # finishes at t=10; first then has 250B left at 100 B/s -> t=12.5.
    assert env.now == pytest.approx(12.5)
    env.run(until=proc)
    assert env.now == pytest.approx(12.5)


def test_flow_rate_is_min_across_links():
    env, fabric = make_fabric()
    fast = fabric.link("fast", 1000.0)
    slow = fabric.link("slow", 10.0)
    flow = fabric.transfer(100.0, [fast, slow])
    env.run(until=flow.done)
    assert env.now == pytest.approx(10.0)


def test_zero_byte_flow_completes_immediately():
    env, fabric = make_fabric()
    link = fabric.link("l", 100.0)
    flow = fabric.transfer(0.0, [link])
    env.run(until=flow.done)
    assert env.now == 0.0
    assert not link.flows


def test_negative_bytes_rejected():
    env, fabric = make_fabric()
    link = fabric.link("l", 100.0)
    with pytest.raises(ValueError):
        fabric.transfer(-1.0, [link])


def test_link_requires_positive_capacity():
    env, fabric = make_fabric()
    with pytest.raises(ValueError):
        fabric.link("bad", 0.0)


def test_link_is_cached_by_name():
    env, fabric = make_fabric()
    a = fabric.link("same", 10.0)
    b = fabric.link("same", 99.0)
    assert a is b
    assert a.capacity_bps == 10.0


def test_cancel_fails_waiters_and_frees_link():
    env, fabric = make_fabric()
    link = fabric.link("l", 100.0)
    victim = fabric.transfer(1000.0, [link])
    bystander = fabric.transfer(1000.0, [link])
    failures = []

    def waiter(env):
        try:
            yield victim.done
        except FlowCancelled as exc:
            failures.append((env.now, exc.reason))

    def canceller(env):
        yield env.timeout(5.0)
        victim.cancel("node crash")

    env.process(waiter(env))
    env.process(canceller(env))
    env.run(until=bystander.done)
    assert failures == [(5.0, "node crash")]
    # bystander: 250B at t=5 (50 B/s shared), then 750B at 100 B/s -> 12.5s
    assert env.now == pytest.approx(12.5)


def test_transferred_tracks_partial_progress():
    env, fabric = make_fabric()
    link = fabric.link("l", 100.0)
    flow = fabric.transfer(1000.0, [link])
    env.run(until=3.0)
    assert flow.transferred() == pytest.approx(300.0)


def test_utilization_never_exceeds_one():
    env, fabric = make_fabric()
    link = fabric.link("l", 100.0)
    flows = [fabric.transfer(10_000.0, [link]) for _ in range(7)]
    env.run(until=1.0)
    assert link.utilization() <= 1.0 + 1e-9
    for flow in flows:
        assert flow.rate == pytest.approx(100.0 / 7)


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(
        st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=8
    ),
    capacity=st.floats(min_value=1.0, max_value=1e6),
)
def test_property_total_bytes_conserved(sizes, capacity):
    """All bytes of all flows eventually arrive, whatever the contention."""
    env = Environment()
    fabric = NetworkFabric(env)
    link = fabric.link("l", capacity)
    flows = [fabric.transfer(size, [link]) for size in sizes]
    env.run()
    for flow, size in zip(flows, sizes):
        assert flow.done.ok
        assert flow.remaining <= 1e-6
    assert fabric.bytes_moved == pytest.approx(sum(sizes), rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(
        st.floats(min_value=1.0, max_value=1e5), min_size=2, max_size=6
    ),
    delays=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=6
    ),
)
def test_property_completion_no_earlier_than_ideal(sizes, delays):
    """No flow finishes before size/capacity seconds after it starts."""
    env = Environment()
    fabric = NetworkFabric(env)
    capacity = 1000.0
    link = fabric.link("l", capacity)
    n = min(len(sizes), len(delays))
    records = []

    def launch(env, delay, size):
        yield env.timeout(delay)
        flow = fabric.transfer(size, [link])
        start = env.now
        yield flow.done
        records.append((start, env.now, size))

    for i in range(n):
        env.process(launch(env, delays[i], sizes[i]))
    env.run()
    assert len(records) == n
    for start, end, size in records:
        assert end - start >= size / capacity - 1e-6


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_deterministic_replay(seed):
    """Identical setups produce identical completion times."""
    import random

    def run_once():
        rng = random.Random(seed)
        env = Environment()
        fabric = NetworkFabric(env)
        links = [fabric.link(f"l{i}", rng.uniform(10, 1000)) for i in range(3)]
        finish_times = []

        def launch(env, delay, size, chosen):
            yield env.timeout(delay)
            flow = fabric.transfer(size, chosen)
            yield flow.done
            finish_times.append(env.now)

        for _ in range(6):
            delay = rng.uniform(0, 5)
            size = rng.uniform(1, 5000)
            chosen = rng.sample(links, rng.randint(1, 3))
            env.process(launch(env, delay, size, chosen))
        env.run()
        return finish_times

    assert run_once() == run_once()
