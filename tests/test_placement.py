"""Unit tests for every placement policy in ``systems/placement.py``."""

import inspect

import pytest

from repro.apps import get_app
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.sim.environment import Environment
from repro.systems.placement import (
    POLICIES,
    get_policy,
    hashed,
    offset_round_robin,
    policy_names,
    round_robin,
    single_node,
)

ALL_POLICIES = [round_robin, single_node, hashed, offset_round_robin(2)]
POLICY_IDS = ["round_robin", "single_node", "hashed", "offset:2"]


@pytest.fixture()
def workers():
    env = Environment()
    return Cluster(env, ClusterConfig(worker_count=3)).workers


@pytest.fixture(params=["wc", "img", "etl"])
def workflow(request):
    return get_app(request.param).build()


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=POLICY_IDS)
def test_policy_covers_every_function(policy, workflow, workers):
    placement = policy(workflow, workers)
    assert set(placement) == set(workflow.functions)
    assert all(node in workers for node in placement.values())


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=POLICY_IDS)
def test_policy_is_deterministic(policy, workflow, workers):
    assert policy(workflow, workers) == policy(workflow, workers)


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=POLICY_IDS)
def test_policy_rejects_empty_workers(policy, workflow):
    with pytest.raises(ValueError):
        policy(workflow, [])


def test_single_node_uses_first_worker(workflow, workers):
    placement = single_node(workflow, workers)
    assert set(placement.values()) == {workers[0]}


def test_round_robin_spreads_in_topological_order(workers):
    workflow = get_app("wc").build()
    order = workflow.topological_order()
    placement = round_robin(workflow, workers)
    for index, name in enumerate(order):
        assert placement[name] is workers[index % len(workers)]


def test_offset_shifts_round_robin(workers):
    workflow = get_app("wc").build()
    base = round_robin(workflow, workers)
    shifted = offset_round_robin(1)(workflow, workers)
    order = workflow.topological_order()
    for index, name in enumerate(order):
        assert shifted[name] is workers[(index + 1) % len(workers)]
    assert offset_round_robin(0)(workflow, workers) == base
    # Offsets wrap modulo the worker count.
    assert offset_round_robin(len(workers))(workflow, workers) == base


def test_hashed_depends_only_on_function_names(workers):
    a = hashed(get_app("wc").build(), workers)
    b = hashed(get_app("wc").build(), workers)
    assert {k: v.name for k, v in a.items()} == {
        k: v.name for k, v in b.items()
    }


# -- registry / CLI agreement -------------------------------------------------


def test_registry_resolves_every_named_policy():
    for name in POLICIES:
        assert get_policy(name) is POLICIES[name]


def test_get_policy_parses_offset_specs(workflow, workers):
    placement = get_policy("offset:2")(workflow, workers)
    assert placement == offset_round_robin(2)(workflow, workers)
    # Bare "offset" means offset 0 == round_robin.
    assert get_policy("offset")(workflow, workers) == round_robin(
        workflow, workers
    )


def test_get_policy_rejects_bad_specs():
    with pytest.raises(KeyError):
        get_policy("bogus")
    with pytest.raises(KeyError):
        get_policy("round_robin:3")  # non-parameterized policy with an arg
    with pytest.raises(KeyError):
        get_policy("round_robin:")  # trailing colon is not a valid name
    with pytest.raises(ValueError):
        get_policy("offset:x")


def test_policy_names_cover_registry():
    names = policy_names()
    for name in POLICIES:
        assert name in names
    assert "offset:<n>" in names


def test_cli_help_names_every_policy():
    """The --placement help text and the registry must not drift apart."""
    import repro.cli as cli

    source = inspect.getsource(cli)
    for name in POLICIES:
        assert name in source, f"policy {name!r} missing from CLI help"
    assert "offset:<n>" in source
