"""Tests for the workflow DAG model and validation."""

import pytest

from repro.workflow import (
    ComputeModel,
    EdgeKind,
    OutputModel,
    USER,
    Workflow,
    WorkflowValidationError,
    validate,
)


def linear_workflow():
    wf = Workflow("linear")
    wf.add_function("a", ComputeModel(0.1), OutputModel(input_ratio=1.0))
    wf.add_function("b", ComputeModel(0.1), OutputModel(input_ratio=1.0))
    wf.add_function("c", ComputeModel(0.1), OutputModel(fixed_bytes=10))
    wf.connect("a", "b")
    wf.connect("b", "c")
    wf.connect("c", USER)
    return wf


def test_topological_order_linear():
    wf = linear_workflow()
    assert wf.topological_order() == ["a", "b", "c"]


def test_entry_defaults_to_first_function():
    wf = linear_workflow()
    assert wf.entry == "a"


def test_duplicate_function_rejected():
    wf = Workflow("dup")
    wf.add_function("a", ComputeModel(0.1), OutputModel())
    with pytest.raises(ValueError, match="duplicate"):
        wf.add_function("a", ComputeModel(0.1), OutputModel())


def test_user_reserved_name():
    wf = Workflow("bad")
    with pytest.raises(ValueError):
        wf.add_function(USER, ComputeModel(0.1), OutputModel())


def test_connect_unknown_source():
    wf = Workflow("w")
    with pytest.raises(KeyError):
        wf.connect("ghost", "other")


def test_cycle_detection():
    wf = Workflow("cyclic")
    wf.add_function("a", ComputeModel(0.1), OutputModel(input_ratio=1))
    wf.add_function("b", ComputeModel(0.1), OutputModel(input_ratio=1))
    wf.connect("a", "b")
    wf.connect("b", "a")
    with pytest.raises(ValueError, match="cycle"):
        wf.topological_order()


def test_edge_to_undefined_function_detected():
    wf = Workflow("dangling")
    wf.add_function("a", ComputeModel(0.1), OutputModel())
    wf.connect("a", "ghost")
    with pytest.raises(WorkflowValidationError, match="undefined"):
        validate(wf)


def test_unreachable_function_detected():
    wf = linear_workflow()
    wf.add_function("island", ComputeModel(0.1), OutputModel())
    wf.connect("island", USER)
    with pytest.raises(WorkflowValidationError, match="unreachable"):
        validate(wf)


def test_empty_workflow_invalid():
    with pytest.raises(WorkflowValidationError, match="no functions"):
        validate(Workflow("empty"))


def test_switch_requires_selector():
    wf = Workflow("sw")
    wf.add_function("a", ComputeModel(0.1), OutputModel(input_ratio=1))
    wf.add_function("b", ComputeModel(0.1), OutputModel())
    wf.add_function("c", ComputeModel(0.1), OutputModel())
    wf.functions["a"].add_edge("out", EdgeKind.SWITCH, ["b", "c"])
    wf.connect("b", USER)
    wf.connect("c", USER)
    with pytest.raises(WorkflowValidationError, match="selector"):
        validate(wf)


def test_switch_with_selector_validates():
    wf = Workflow("sw")
    wf.add_function("a", ComputeModel(0.1), OutputModel(input_ratio=1))
    wf.add_function("b", ComputeModel(0.1), OutputModel())
    wf.add_function("c", ComputeModel(0.1), OutputModel())
    wf.connect_switch("a", ["b", "c"], selector=lambda seed, branch: seed % 2)
    wf.connect("b", USER)
    wf.connect("c", USER)
    validate(wf)


def test_switch_needs_two_candidates():
    wf = Workflow("sw")
    wf.add_function("a", ComputeModel(0.1), OutputModel())
    with pytest.raises(ValueError, match="two candidates"):
        wf.connect_switch("a", ["b"], selector=lambda s, b: 0)


def test_normal_edge_single_destination_enforced():
    from repro.workflow.model import DataEdge

    with pytest.raises(ValueError, match="exactly one"):
        DataEdge("a", "out", EdgeKind.NORMAL, ("b", "c"))


def test_predecessors_and_successors():
    wf = linear_workflow()
    preds = wf.predecessors("b")
    assert len(preds) == 1
    assert preds[0][0].name == "a"
    assert [e.destination for e in wf.successors("b")] == ["c"]


def test_edge_kind_parse():
    assert EdgeKind.parse("foreach") is EdgeKind.FOREACH
    assert EdgeKind.parse(" MERGE ") is EdgeKind.MERGE
    with pytest.raises(ValueError, match="unknown edge kind"):
        EdgeKind.parse("banana")


def test_compute_model_validation():
    with pytest.raises(ValueError):
        ComputeModel(base_core_s=-1)
    with pytest.raises(ValueError):
        ComputeModel(jitter=1.5)


def test_output_model_math():
    model = OutputModel(fixed_bytes=100, input_ratio=0.5)
    assert model.output_bytes(1000) == 600


def test_compute_model_jitter_uses_rng():
    import random

    model = ComputeModel(base_core_s=1.0, jitter=0.2)
    rng = random.Random(1)
    values = {model.core_seconds(0, rng) for _ in range(5)}
    assert len(values) > 1
    assert model.core_seconds(0) == 1.0  # no rng -> deterministic
