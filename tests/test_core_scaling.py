"""Tests for pressure-aware function scaling (Equation 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scaling import ScalingDecision, evaluate, pressure


def test_pressure_formula_matches_paper():
    # Pressure = alpha * Size/Bw - T_FLU
    assert pressure(10e6, 5e6, 1.0, alpha=1.0) == pytest.approx(1.0)
    assert pressure(10e6, 5e6, 3.0, alpha=1.0) == pytest.approx(-1.0)
    assert pressure(10e6, 5e6, 1.0, alpha=1.5) == pytest.approx(2.0)


def test_no_backpressure_when_dlu_keeps_up():
    decision = evaluate(1e6, 10e6, t_flu_s=1.0, alpha=1.0)
    assert not decision.backpressure
    assert decision.block_s == 0.0


def test_backpressure_blocks_for_pressure_time():
    decision = evaluate(20e6, 5e6, t_flu_s=1.0, alpha=1.0)
    assert decision.backpressure
    assert decision.block_s == pytest.approx(3.0)


def test_disabled_is_non_aware_variant():
    decision = evaluate(100e6, 1e6, t_flu_s=0.1, alpha=1.2, enabled=False)
    assert not decision.backpressure
    assert decision.block_s == 0.0


def test_pressure_validation():
    with pytest.raises(ValueError):
        pressure(1.0, 0.0, 1.0, alpha=1.0)
    with pytest.raises(ValueError):
        pressure(-1.0, 1.0, 1.0, alpha=1.0)
    with pytest.raises(ValueError):
        pressure(1.0, 1.0, -1.0, alpha=1.0)
    with pytest.raises(ValueError):
        pressure(1.0, 1.0, 1.0, alpha=0.0)


@settings(max_examples=60, deadline=None)
@given(
    size=st.floats(min_value=0, max_value=1e9),
    bw=st.floats(min_value=1.0, max_value=1e9),
    t_flu=st.floats(min_value=0, max_value=100),
    alpha=st.floats(min_value=0.1, max_value=3.0),
)
def test_property_block_time_caps_production_rate(size, bw, t_flu, alpha):
    """Blocking for Pressure seconds limits the FLU rate to the DLU rate.

    After blocking, one invocation occupies T_FLU + block >= alpha*Size/Bw,
    i.e. at least the (loss-adjusted) transfer time — so data can never
    pile up at the DLU faster than it drains.
    """
    decision = evaluate(size, bw, t_flu, alpha)
    assert decision.block_s >= 0
    effective_period = t_flu + decision.block_s
    assert effective_period >= alpha * size / bw - 1e-9


@settings(max_examples=30, deadline=None)
@given(
    size=st.floats(min_value=0, max_value=1e9),
    bw=st.floats(min_value=1.0, max_value=1e9),
    t_flu=st.floats(min_value=0, max_value=100),
)
def test_property_pressure_monotonic_in_size(size, bw, t_flu):
    base = pressure(size, bw, t_flu, alpha=1.0)
    bigger = pressure(size * 2 + 1, bw, t_flu, alpha=1.0)
    assert bigger >= base
