"""The resilience layer's acceptance suite (``docs/robustness.md``).

Three clusters of assertions:

* **Policy and taxonomy units** — deterministic seeded-jitter backoff,
  strict validation, the exception→kind classification, and payload
  round-trips for everything that crosses a process or wire boundary.
* **Crash identity** — the tentpole property: SIGKILL a pool worker
  (or its serial stand-in) mid-cell and the recovered report is
  *byte-identical* to the fault-free run, under the streaming and the
  batched engine alike, at any shard count.  Degraded runs
  (``on_cell_failure="skip"``) are deterministic too.
* **Admission control** — the serve layer's 429 contract: queue-depth
  bounds and per-tenant concurrent-run quotas reject with
  ``Retry-After``, ``/healthz`` flips ``ready``, and ``ServeClient``
  rides the 429 out transparently while other tenants keep completing.
"""

import json
import pickle
import threading
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loadgen.trace import synthesize_trace
from repro.metrics.report import render_json
from repro.metrics.telemetry import MetricsRegistry
from repro.parallel import (
    CellDeadlineExceeded,
    CellFailedError,
    CellFailure,
    FaultSpec,
    HostFaultPlan,
    PoisonError,
    ReplaySpec,
    RetryPolicy,
    WorkerCrashError,
    classify_failure,
    run_parallel_replay,
)
from repro.parallel.resilience import FAILURE_KINDS, FAULT_KINDS
from repro.parallel.sink import RecordSinkSpec
from repro.serve import ServeClient, create_server, parse_run_request
import repro.serve.jobs as jobs_mod
from repro.serve.jobs import AdmissionDenied, JobStore

SPEC = ReplaySpec(default_app="wc", seed=7)

#: Retries should be exercised, not waited for.
FAST_RETRY = RetryPolicy(max_attempts=2, backoff_base_s=0.0)


def _trace(tenants=3, seed=0):
    return synthesize_trace(
        tenants=tenants, duration_s=10.0, mean_rpm=40.0, apps=["wc"],
        seed=seed,
    )


def _poison(cell, attempt=1):
    return HostFaultPlan(
        faults=(FaultSpec(kind="poison", cell=cell, attempt=attempt),)
    )


# -- RetryPolicy: deterministic backoff, strict validation --------------------


def test_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy()
    assert policy.backoff_s(7, "tenant0", 1) == 0.0  # attempt 1 never waits
    for attempt in range(2, 8):
        base = min(
            policy.backoff_max_s,
            policy.backoff_base_s * policy.backoff_factor ** (attempt - 2),
        )
        for key in ("tenant0", "tenant1"):
            pause = policy.backoff_s(7, key, attempt)
            assert pause == policy.backoff_s(7, key, attempt)  # pure
            assert base <= pause <= base * (1 + policy.jitter)
    # Jitter decorrelates cells: same attempt, different keys, different
    # pauses (for at least one attempt — they hash independently).
    assert any(
        policy.backoff_s(7, "tenant0", a) != policy.backoff_s(7, "tenant1", a)
        for a in range(2, 8)
    )
    # The cap holds no matter how deep the retry ladder goes.
    assert policy.backoff_s(7, "k", 40) <= policy.backoff_max_s * (
        1 + policy.jitter
    )


def test_retry_policy_validation():
    for bad in (
        RetryPolicy(max_attempts=0),
        RetryPolicy(backoff_base_s=-0.1),
        RetryPolicy(backoff_factor=0.5),
        RetryPolicy(backoff_max_s=-1),
        RetryPolicy(jitter=1.5),
        RetryPolicy(deadline_s=0.0),
    ):
        with pytest.raises(ValueError):
            bad.validate()
    RetryPolicy().validate()  # the default is valid


def test_retry_policy_wire_parsing():
    policy = RetryPolicy.from_payload({"max_attempts": 2, "deadline_s": 1.5})
    assert policy.max_attempts == 2 and policy.deadline_s == 1.5
    assert RetryPolicy.from_payload({}).max_attempts == 3
    with pytest.raises(ValueError, match="unknown retry keys"):
        RetryPolicy.from_payload({"max_attempts": 2, "backoff_base_s": 1})
    with pytest.raises(ValueError):
        RetryPolicy.from_payload([1, 2])
    with pytest.raises(ValueError):
        RetryPolicy.from_payload({"max_attempts": 0})


# -- failure taxonomy ---------------------------------------------------------


def test_classify_failure_covers_every_kind():
    from concurrent.futures.process import BrokenProcessPool

    cases = {
        "worker-crash": [WorkerCrashError("x"), BrokenProcessPool("x")],
        "poison": [PoisonError("x")],
        "timeout": [CellDeadlineExceeded("k", 1.0), TimeoutError("x")],
        "app-error": [ValueError("x"), RuntimeError("x")],
    }
    # ``lease-expired`` is the one kind no exception maps to: the
    # control plane's WorkerRegistry assigns it when a remote lease
    # deadline passes without a result (no worker-side throw exists).
    assert set(cases) | {"lease-expired"} == set(FAILURE_KINDS)
    for kind, excs in cases.items():
        for exc in excs:
            assert classify_failure(exc) == kind


def test_failure_payloads_and_pickling_round_trip():
    failure = CellFailure(
        key="tenant0", kind="poison", attempts=3, message="boom"
    )
    assert CellFailure.from_payload(failure.to_payload()) == failure
    assert failure.to_payload()["cell"] == "tenant0"

    # Both exceptions cross the worker→parent pickle boundary intact.
    error = pickle.loads(pickle.dumps(CellFailedError(failure)))
    assert error.failure == failure
    assert "tenant0" in str(error) and "poison" in str(error)

    deadline = pickle.loads(pickle.dumps(CellDeadlineExceeded("k", 1.5)))
    assert (deadline.key, deadline.deadline_s) == ("k", 1.5)
    assert classify_failure(deadline) == "timeout"


# -- fault plans --------------------------------------------------------------


def test_fault_spec_validation_and_matching():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="meteor", cell="a").validate()
    with pytest.raises(ValueError):
        FaultSpec(kind="kill", cell="a", attempt=-1).validate()
    with pytest.raises(ValueError):
        FaultSpec(kind="delay", cell="a", delay_s=-0.1).validate()

    once = FaultSpec(kind="poison", cell="a", attempt=2)
    assert once.matches("a", 2) and not once.matches("a", 1)
    assert not once.matches("b", 2)
    every = FaultSpec(kind="poison", cell="a", attempt=0)
    assert all(every.matches("a", n) for n in (1, 2, 9))


def test_fault_plan_wire_round_trip():
    plan = HostFaultPlan.from_payload(
        [{"kind": "delay", "cell": "a", "delay_s": 0.5},
         {"kind": "kill", "cell": "b", "attempt": 2}]
    )
    assert plan.to_payload() == [
        {"kind": "delay", "cell": "a", "attempt": 1, "delay_s": 0.5},
        {"kind": "kill", "cell": "b", "attempt": 2, "delay_s": 0.0},
    ]
    for bad in (
        {"not": "a list"},
        [{"kind": "poison"}],                      # missing cell
        [{"kind": "poison", "cell": "a", "pid": 1}],  # unknown key
        [{"kind": "meteor", "cell": "a"}],         # unknown kind
    ):
        with pytest.raises(ValueError):
            HostFaultPlan.from_payload(bad)
    assert sorted(FAULT_KINDS) == ["delay", "kill", "poison"]


# -- retries are invisible to the replay semantics ----------------------------


def test_poison_then_retry_yields_fault_free_report():
    trace = _trace()
    control = render_json(run_parallel_replay(trace, SPEC, workers=1).to_dict())
    metrics = MetricsRegistry()
    result = run_parallel_replay(
        trace, SPEC, workers=1,
        retry=FAST_RETRY, fault_plan=_poison("tenant0"), metrics=metrics,
    )
    assert render_json(result.to_dict()) == control
    assert metrics.snapshot()["repro_cell_retries_total"] == {(): 1.0}


def test_serial_kill_fault_counts_a_worker_crash():
    """On the in-process path a ``kill`` fault degrades to a raised
    WorkerCrashError — same classification, same retry path, host
    process intact."""
    trace = _trace()
    control = render_json(run_parallel_replay(trace, SPEC, workers=1).to_dict())
    metrics = MetricsRegistry()
    result = run_parallel_replay(
        trace, SPEC, workers=1,
        retry=FAST_RETRY,
        fault_plan=HostFaultPlan(
            faults=(FaultSpec(kind="kill", cell="tenant1", attempt=1),)
        ),
        metrics=metrics,
    )
    assert render_json(result.to_dict()) == control
    snapshot = metrics.snapshot()
    assert snapshot["repro_worker_crashes_total"] == {(): 1.0}
    assert snapshot["repro_cell_retries_total"] == {(): 1.0}


def test_skip_mode_degrades_deterministically():
    trace = _trace()
    reports = []
    for _ in range(2):
        result = run_parallel_replay(
            trace, SPEC, workers=1,
            retry=FAST_RETRY,
            fault_plan=_poison("tenant0", attempt=0),  # every attempt
            on_cell_failure="skip",
        )
        reports.append(render_json(result.to_dict()))
    assert reports[0] == reports[1]  # degradation is deterministic

    payload = json.loads(reports[0])
    failed = payload["replay"]["failed_cells"]
    assert [(f["cell"], f["kind"], f["attempts"]) for f in failed] == [
        ("tenant0", "poison", 2)
    ]
    assert "injected poison" in failed[0]["message"]
    # The surviving cells still merged.
    assert payload["offered"] > 0
    assert "tenant0" not in payload["tenants"]


def test_fail_mode_raises_cell_failed_error():
    with pytest.raises(CellFailedError) as err:
        run_parallel_replay(
            _trace(), SPEC, workers=1,
            retry=RetryPolicy(max_attempts=1),
            fault_plan=_poison("tenant2", attempt=0),
        )
    failure = err.value.failure
    assert (failure.key, failure.kind, failure.attempts) == (
        "tenant2", "poison", 1
    )


def test_delay_fault_past_deadline_is_a_timeout():
    result = run_parallel_replay(
        _trace(), SPEC, workers=1,
        retry=RetryPolicy(max_attempts=1, deadline_s=0.2),
        fault_plan=HostFaultPlan(
            faults=(FaultSpec(kind="delay", cell="tenant0", attempt=0,
                              delay_s=5.0),)
        ),
        on_cell_failure="skip",
    )
    failed = result.to_dict()["replay"]["failed_cells"]
    assert [(f["cell"], f["kind"]) for f in failed] == [("tenant0", "timeout")]
    assert "deadline" in failed[0]["message"]


def test_spill_scratch_cleaned_up_when_replay_fails(tmp_path):
    spec = ReplaySpec(
        default_app="wc", seed=7,
        record_sink=RecordSinkSpec(
            kind="spill", spill_dir=str(tmp_path), max_records_in_memory=1,
        ),
    )
    with pytest.raises(CellFailedError):
        run_parallel_replay(
            _trace(), spec, workers=1,
            retry=RetryPolicy(max_attempts=1),
            fault_plan=_poison("tenant2", attempt=0),
        )
    # The sink's scratch directory was removed on the failure path, not
    # leaked (the close() in run_parallel_replay's except branch).
    assert list(tmp_path.iterdir()) == []


# -- the crash-identity property (the tentpole) -------------------------------


@settings(max_examples=2, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16 - 1))
def test_crash_identity_across_engines_and_shards(seed):
    """SIGKILL a worker mid-cell on attempt 1: the recovered report is
    byte-identical to the fault-free serial control, for the streaming
    and the batched engine, at shards 1/2/4."""
    trace = synthesize_trace(
        tenants=3, duration_s=8.0, mean_rpm=40.0, apps=["wc"], seed=seed,
    )
    spec = ReplaySpec(default_app="wc", seed=seed)
    control = render_json(run_parallel_replay(trace, spec, workers=1).to_dict())
    victim = sorted(trace.tenants())[0]
    plan = HostFaultPlan(
        faults=(FaultSpec(kind="kill", cell=victim, attempt=1),)
    )
    retry = RetryPolicy(max_attempts=4, backoff_base_s=0.01)
    for stream in (True, False):
        for shards in (1, 2, 4):
            result = run_parallel_replay(
                trace, spec, shards=shards, workers=2, stream=stream,
                retry=retry, fault_plan=plan,
            )
            assert render_json(result.to_dict()) == control, (
                f"report diverged after worker crash "
                f"(stream={stream}, shards={shards}, seed={seed})"
            )


# -- the CLI surface ----------------------------------------------------------

TRACE_CSV = (
    "at_s,tenant,app\n"
    "0.0,a,wc\n0.4,b,wc\n0.9,a,wc\n1.3,b,wc\n"
)


def _cli_replay(tmp_path, capsys, *argv):
    from repro.cli import main

    path = tmp_path / "t.csv"
    path.write_text(TRACE_CSV)
    code = main(["replay", str(path), "--format", "json", *argv])
    return code, capsys.readouterr()


def _report_body(captured):
    payload = json.loads(captured.out)
    payload.pop("parallel")
    payload.pop("trace")
    return payload


def test_cli_fault_injection_and_exit_codes(tmp_path, capsys):
    code, out = _cli_replay(tmp_path, capsys)
    assert code == 0
    control = _report_body(out)

    # A real pooled worker SIGKILL, recovered to the identical report.
    code, out = _cli_replay(
        tmp_path, capsys,
        "--workers", "2", "--fault", "kill:a", "--max-attempts", "3",
    )
    assert code == 0
    assert _report_body(out) == control

    # Skip mode degrades: exit 3, failed_cells in the payload.
    code, out = _cli_replay(
        tmp_path, capsys,
        "--fault", "poison:a:0", "--max-attempts", "2",
        "--on-cell-failure", "skip",
    )
    assert code == 3
    failed = _report_body(out)["replay"]["failed_cells"]
    assert [(f["cell"], f["kind"], f["attempts"]) for f in failed] == [
        ("a", "poison", 2)
    ]

    # Fail mode: exit 1 with a clean one-line error, never a traceback.
    code, out = _cli_replay(
        tmp_path, capsys, "--fault", "poison:a:0", "--max-attempts", "1",
    )
    assert code == 1
    assert "error: cell 'a' failed (poison)" in out.err
    assert "Traceback" not in out.err

    # Malformed fault specs are usage errors (exit 2), caught eagerly.
    code, out = _cli_replay(tmp_path, capsys, "--fault", "meteor:a")
    assert code == 2 and "unknown fault kind" in out.err
    code, out = _cli_replay(tmp_path, capsys, "--fault", "kill")
    assert code == 2


def test_cli_serve_validates_max_queued(capsys):
    from repro.cli import main

    assert main(["serve", "--max-queued", "0"]) == 2
    assert "--max-queued" in capsys.readouterr().err


# -- serve admission control --------------------------------------------------

TINY_TRACE = {"events": [{"at_s": 0.0, "tenant": "a"}]}

#: ``trace.name == "hold"`` marks runs the gated engine stub blocks on.
HELD_TRACE = dict(TINY_TRACE, name="hold")

QUOTA_CONFIG = {"tenants": {"hot": {"max_concurrent_runs": 1}}}


def _gated_engine(monkeypatch):
    """Replace the job store's engine entry point with one that blocks
    runs whose trace is named ``hold`` until the returned gate opens."""
    gate = threading.Event()
    real = jobs_mod.run_parallel_replay

    def held(trace, spec, **kwargs):
        if trace.name == "hold" and not gate.is_set():
            gate.wait(timeout=30)
        return real(trace, spec, **kwargs)

    monkeypatch.setattr(jobs_mod, "run_parallel_replay", held)
    return gate


def _await(predicate, timeout_s, what):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value is not None:
            return value
        time.sleep(0.02)
    raise AssertionError(f"timed out after {timeout_s}s waiting for {what}")


def _await_status(store, run_id, status):
    _await(
        lambda: True if store.snapshot(run_id)["status"] == status else None,
        30, f"{run_id} to be {status}",
    )


def test_jobstore_bounds_its_queue(monkeypatch):
    gate = _gated_engine(monkeypatch)
    store = JobStore(workers=1, max_queued=1)
    body = {"app": "wc", "seed": 1, "trace": HELD_TRACE}
    try:
        first = store.submit(parse_run_request(body))
        _await_status(store, first, "running")
        second = store.submit(parse_run_request(body))  # fills the queue

        with pytest.raises(AdmissionDenied) as err:
            store.submit(parse_run_request(body))
        assert err.value.reason == "queue_full"
        assert err.value.retry_after_s > 0
        assert store.rejected == 1
        assert store.counts()["queued"] == 1
        assert store.metrics.snapshot()["repro_runs_rejected_total"] == {
            (("reason", "queue_full"),): 1.0
        }

        gate.set()
        for run_id in (first, second):
            _await_status(store, run_id, "done")
        # Pressure released: submissions are admitted again.
        store.submit(parse_run_request(dict(body, trace=TINY_TRACE)))
    finally:
        gate.set()
        store.close()


def test_jobstore_enforces_tenant_quota(monkeypatch):
    gate = _gated_engine(monkeypatch)
    store = JobStore(workers=2)
    hot = {"app": "wc", "seed": 1, "tenant": "hot",
           "tenant_config": QUOTA_CONFIG, "trace": HELD_TRACE}
    cold = {"app": "wc", "seed": 1, "tenant": "cold",
            "tenant_config": QUOTA_CONFIG, "trace": TINY_TRACE}
    try:
        held = store.submit(parse_run_request(hot))
        _await_status(store, held, "running")

        with pytest.raises(AdmissionDenied) as err:
            store.submit(parse_run_request(hot))
        assert err.value.reason == "tenant_quota"
        assert "hot" in str(err.value)

        # The quota is per tenant: an unthrottled tenant sails through
        # and *completes* while the hot tenant's run is still held.
        cold_id = store.submit(parse_run_request(cold))
        _await_status(store, cold_id, "done")
        assert store.snapshot(held)["status"] == "running"
        assert store.metrics.snapshot()["repro_runs_rejected_total"] == {
            (("reason", "tenant_quota"),): 1.0
        }

        gate.set()
        _await_status(store, held, "done")
        # The quota slot freed: the hot tenant is admitted again.
        store.submit(parse_run_request(dict(hot, trace=TINY_TRACE)))
    finally:
        gate.set()
        store.close()


@pytest.fixture
def admission_server(monkeypatch):
    gate = _gated_engine(monkeypatch)
    srv = create_server(port=0, workers=2, quiet=True, max_queued=2)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv, gate
    finally:
        gate.set()
        srv.close()
        thread.join(timeout=10)


def _raw_post(url, body):
    request = urllib.request.Request(
        url + "/v1/runs", data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    return urllib.request.urlopen(request)


def test_http_quota_answers_429_and_client_rides_it_out(admission_server):
    """The acceptance scenario: a hot tenant over quota gets 429 +
    Retry-After while another tenant's run completes; ``ServeClient``
    retries the 429 transparently and lands the run once the quota
    frees."""
    srv, gate = admission_server
    hot = {"app": "wc", "seed": 1, "tenant": "hot",
           "tenant_config": QUOTA_CONFIG, "trace": HELD_TRACE}
    cold = {"app": "wc", "seed": 1, "tenant": "cold",
            "tenant_config": QUOTA_CONFIG, "trace": TINY_TRACE}
    client = ServeClient(srv.url, retries=8, backoff_s=0.05)

    held_id = client.submit(hot)
    _await(
        lambda: True if client.status(held_id)["status"] == "running"
        else None,
        30, "held run to start",
    )

    # A raw client sees the documented 429 + Retry-After contract.
    with pytest.raises(urllib.error.HTTPError) as err:
        _raw_post(srv.url, hot)
    assert err.value.code == 429
    assert float(err.value.headers["Retry-After"]) > 0
    assert "hot" in json.loads(err.value.read())["error"]

    # Another tenant completes while the hot tenant is saturated.
    report = client.run(cold)
    assert report["offered"] == 1

    # ServeClient retries the 429 transparently: open the gate shortly
    # after the submit starts, and the resubmission is admitted.
    threading.Timer(0.4, gate.set).start()
    second_id = client.submit(hot)
    assert second_id != held_id
    for run_id in (held_id, second_id):
        for _ in client.events(run_id):
            pass
        assert client.report(run_id)["offered"] == 1

    assert 'repro_runs_rejected_total{reason="tenant_quota"}' in (
        client.metrics_text()
    )


def test_healthz_ready_flips_under_queue_pressure(monkeypatch):
    gate = _gated_engine(monkeypatch)
    srv = create_server(port=0, workers=1, quiet=True, max_queued=1)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    body = {"app": "wc", "seed": 1, "trace": HELD_TRACE}

    def healthz():
        with urllib.request.urlopen(srv.url + "/healthz") as resp:
            return json.loads(resp.read())

    try:
        assert healthz()["ready"] is True
        with _raw_post(srv.url, body) as resp:
            first = json.loads(resp.read())["id"]
        _await(
            lambda: True
            if json.loads(urllib.request.urlopen(
                f"{srv.url}/v1/runs/{first}"
            ).read())["status"] == "running" else None,
            30, "first run to start",
        )
        with _raw_post(srv.url, body) as resp:
            second = json.loads(resp.read())["id"]

        health = healthz()
        assert health["ready"] is False  # queue at max_queued
        assert health["queued"] == 1 and health["max_queued"] == 1

        with pytest.raises(urllib.error.HTTPError) as err:
            _raw_post(srv.url, body)
        assert err.value.code == 429
        assert healthz()["rejected"] == 1

        gate.set()
        for run_id in (first, second):
            _await(
                lambda run_id=run_id: True
                if json.loads(urllib.request.urlopen(
                    f"{srv.url}/v1/runs/{run_id}"
                ).read())["status"] == "done" else None,
                30, f"{run_id} to finish",
            )
        health = healthz()
        assert health["ready"] is True and health["queued"] == 0
    finally:
        gate.set()
        srv.close()
        thread.join(timeout=10)
