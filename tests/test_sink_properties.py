"""Property-based tests on the Wait-Match Memory's lifetime invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig
from repro.core.sink import EntryState, WaitMatchMemory
from repro.sim import Environment


class Action:
    DEPOSIT = "deposit"
    FETCH = "fetch"
    RELEASE = "release"
    WAIT = "wait"
    CLEANUP = "cleanup"


action_strategy = st.lists(
    st.tuples(
        st.sampled_from(
            [Action.DEPOSIT, Action.FETCH, Action.RELEASE, Action.WAIT,
             Action.CLEANUP]
        ),
        st.integers(min_value=0, max_value=5),   # key index
        st.floats(min_value=1.0, max_value=1e6),  # bytes / seconds
    ),
    min_size=1,
    max_size=40,
)


def run_scenario(actions, proactive, passive):
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    node = cluster.workers[0]
    sink = WaitMatchMemory(
        env, node, cluster, ttl_s=5.0,
        proactive_release=proactive, passive_expire=passive,
    )

    def driver():
        for action, index, amount in actions:
            key = ("req", f"task{index % 3}", f"data{index}")
            if action == Action.DEPOSIT:
                sink.deposit(key, amount)
            elif action == Action.FETCH:
                if sink.is_present(key):
                    yield env.process(sink.fetch(key))
            elif action == Action.RELEASE:
                sink.release(key)
            elif action == Action.WAIT:
                yield env.timeout(amount / 1e5)
            elif action == Action.CLEANUP:
                sink.release_request("req")
            # Invariant: accounted cache never negative, and matches the
            # sum of in-memory entries.
            assert node.cache_usage.level >= 0
            resident = sink.resident_bytes()
            assert abs(node.cache_usage.level - resident) < 1.0

    proc = env.process(driver())
    env.run(until=proc)
    env.run(until=env.now + 20.0)  # let every TTL timer fire
    sink.release_request("req")
    return env, node, sink


@settings(max_examples=30, deadline=None)
@given(actions=action_strategy, proactive=st.booleans(), passive=st.booleans())
def test_property_cache_accounting_is_exact(actions, proactive, passive):
    """Cache level == sum of in-memory entries at every step; ends at 0."""
    env, node, sink = run_scenario(actions, proactive, passive)
    assert node.cache_usage.level < 1.0
    assert sink.resident_bytes() == 0


@settings(max_examples=30, deadline=None)
@given(actions=action_strategy)
def test_property_deposits_are_exactly_once(actions):
    """Duplicate deposits never double-count memory or entries."""
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    node = cluster.workers[0]
    sink = WaitMatchMemory(env, node, cluster, ttl_s=100.0,
                           passive_expire=False)
    seen = set()
    for action, index, amount in actions:
        key = ("req", "task", f"d{index}")
        fresh = sink.deposit(key, 100.0)
        assert fresh == (key not in seen)
        seen.add(key)
    assert sink.entry_count() == len(seen)
    assert node.cache_usage.level == 100.0 * len(seen)


@settings(max_examples=20, deadline=None)
@given(
    nbytes=st.floats(min_value=1.0, max_value=1e8),
    ttl=st.floats(min_value=0.5, max_value=10.0),
)
def test_property_unconsumed_data_always_leaves_memory(nbytes, ttl):
    """Whatever the TTL/size, unfetched data ends up spilled, not resident."""
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    node = cluster.workers[0]
    sink = WaitMatchMemory(env, node, cluster, ttl_s=ttl)
    sink.deposit(("r", "t", "d"), nbytes)
    env.run(until=ttl * 3)
    entry = sink._lookup(("r", "t", "d"))
    assert entry.state is EntryState.SPILLED
    assert node.cache_usage.level == 0.0
    assert node.disk.bytes_written >= nbytes
