"""Property-based checkpoint/resume invariance for the replay engine.

The durability claim behind ``repro serve --journal`` reduces to one
engine property: resuming from *any* prefix of journaled cell
completions — the residues round-tripped through JSON exactly as the
journal stores them — must merge to a report byte-identical to the
uninterrupted run, at any shard count, on both the streaming and the
batched path.  These tests drive ``run_parallel_replay``'s
``completed_cells`` entry point directly (no server, no file), so a
failure localizes to the engine rather than the journal plumbing.
"""

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.loadgen.trace import InvocationTrace, TraceEvent  # noqa: E402
from repro.metrics.report import render_json  # noqa: E402
from repro.parallel import ReplaySpec, TenantProfile, run_parallel_replay  # noqa: E402
from repro.parallel.engine import CellResult  # noqa: E402

TENANTS = ["t0", "t1", "t2", "t3"]
APPS = ["wc", "etl"]

events = st.lists(
    st.builds(
        TraceEvent,
        at_s=st.floats(
            min_value=0.0, max_value=8.0,
            allow_nan=False, allow_infinity=False,
        ),
        tenant=st.sampled_from(TENANTS),
        app=st.sampled_from(APPS),
        fanout=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
        seed=st.integers(min_value=0, max_value=999),
    ),
    min_size=1,
    max_size=6,
)

profiles = st.dictionaries(
    st.sampled_from(TENANTS),
    st.builds(
        TenantProfile,
        system=st.one_of(st.none(), st.sampled_from(["dataflower", "sonic"])),
        fanout=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
    ),
    max_size=2,
)


def _journal_round_trip(payload):
    """What a residue looks like after the journal: JSON text and back."""
    return CellResult.from_payload(json.loads(json.dumps(payload)))


@settings(max_examples=4, deadline=None,
          suppress_health_check=list(HealthCheck))
@given(events=events, profile_map=profiles, seed=st.integers(0, 2**16))
def test_resume_from_any_prefix_is_byte_identical(events, profile_map, seed):
    """For every prefix of completed cells, for shards 1/2/4, streaming
    and batched: resumed report == uninterrupted report, byte for byte."""
    trace = InvocationTrace(events=events, name="prop-resume")
    spec = ReplaySpec(
        default_app="wc", seed=seed, tenant_profiles=profile_map or None
    )
    payloads = []
    full = run_parallel_replay(
        trace, spec, workers=1,
        on_cell=lambda cell: payloads.append(cell.to_payload()),
    )
    baseline = render_json(full.to_dict())

    for cut in range(len(payloads) + 1):
        checkpoint = [_journal_round_trip(p) for p in payloads[:cut]]
        remaining = []
        for shards in (1, 2, 4):
            resumed = run_parallel_replay(
                trace, spec, shards=shards, workers=1,
                stream=(shards != 2),  # cover both engine paths
                on_cell=lambda cell: remaining.append(cell.key),
                completed_cells=checkpoint or None,
            )
            assert render_json(resumed.to_dict()) == baseline, (cut, shards)
        # The hook fires only for cells actually re-executed: never for
        # a checkpointed cell (that would mean redone work).
        done = {cell.key for cell in checkpoint}
        assert not done.intersection(remaining), (cut, sorted(done))
        assert len(remaining) == 3 * (len(payloads) - cut)


@settings(max_examples=6, deadline=None,
          suppress_health_check=list(HealthCheck))
@given(events=events, seed=st.integers(0, 2**16))
def test_full_checkpoint_executes_nothing(events, seed):
    """Resuming with every cell checkpointed is a pure merge."""
    trace = InvocationTrace(events=events, name="prop-resume")
    spec = ReplaySpec(default_app="wc", seed=seed)
    payloads = []
    full = run_parallel_replay(
        trace, spec, workers=1,
        on_cell=lambda cell: payloads.append(cell.to_payload()),
    )
    executed = []
    resumed = run_parallel_replay(
        trace, spec, workers=1,
        on_cell=lambda cell: executed.append(cell.key),
        completed_cells=[_journal_round_trip(p) for p in payloads],
    )
    assert executed == []
    assert render_json(resumed.to_dict()) == render_json(full.to_dict())


def test_duplicate_completed_cell_is_rejected():
    trace = InvocationTrace(
        events=[TraceEvent(at_s=0.0, tenant="t0")], name="dup"
    )
    spec = ReplaySpec(default_app="wc", seed=1)
    cells = []
    run_parallel_replay(trace, spec, workers=1, on_cell=cells.append)
    with pytest.raises(ValueError):
        run_parallel_replay(
            trace, spec, workers=1, completed_cells=cells + cells
        )


def test_foreign_completed_cell_is_rejected():
    trace = InvocationTrace(
        events=[TraceEvent(at_s=0.0, tenant="t0")], name="home"
    )
    other = InvocationTrace(
        events=[TraceEvent(at_s=0.0, tenant="elsewhere")], name="away"
    )
    spec = ReplaySpec(default_app="wc", seed=1)
    foreign = []
    run_parallel_replay(other, spec, workers=1, on_cell=foreign.append)
    with pytest.raises(ValueError, match="elsewhere"):
        run_parallel_replay(
            trace, spec, workers=1, completed_cells=foreign
        )


def test_cell_payload_round_trip_is_lossless():
    """to_payload -> JSON text -> from_payload reproduces the residue
    exactly: folding the round-tripped cell changes nothing."""
    trace = InvocationTrace(
        events=[
            TraceEvent(at_s=0.0, tenant="t0", fanout=3),
            TraceEvent(at_s=1.5, tenant="t0", app="etl"),
        ],
        name="round-trip",
    )
    spec = ReplaySpec(default_app="wc", seed=42)
    cells = []
    run_parallel_replay(trace, spec, workers=1, on_cell=cells.append)
    (cell,) = cells
    clone = _journal_round_trip(cell.to_payload())
    assert clone.key == cell.key
    assert clone.records == cell.records
    assert clone.latency == cell.latency
    assert clone.usage == cell.usage
    assert clone.to_payload() == cell.to_payload()
