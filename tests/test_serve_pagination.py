"""Bounded-memory serve surfaces: event ring + spool, paginated
records, and paginated run listings.

Three families, mirroring PR-level guarantees:

- **Event log boundedness**: each run's in-RAM event log is a ring
  capped at ``max_events_per_run``; evicted history replays from the
  per-run disk spool, so a follower still sees the complete, gap-free,
  seq-ordered stream (the client's strict seq validation is the
  witness), the terminal event is never lost, and snapshot progress
  counters survive ring eviction.
- **Records pagination**: ``GET /v1/runs/<id>/records`` pages the
  canonical merged record sequence by absolute index without
  materializing it per request — for both the in-RAM list and the
  disk-spilled sequence — with 409s once records are unavailable.
- **Runs pagination**: ``GET /v1/runs?cursor=&limit=`` walks the
  submission-ordered listing with a cursor that stays stable under
  eviction, and ``ServeClient`` pages both surfaces transparently.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.serve import ServeClient, create_server, parse_run_request
from repro.serve.jobs import Job, JobStore, RecordsUnavailable

TRACE = {
    "name": "t",
    "events": [
        {"at_s": 0.0, "tenant": "a"},
        {"at_s": 0.5, "tenant": "b", "input_bytes": "1MB"},
        {"at_s": 1.0, "tenant": "a", "fanout": 2},
    ],
}

RUN_BODY = {"app": "wc", "seed": 7, "trace": TRACE}


def _get(server, path):
    try:
        with urllib.request.urlopen(server.url + path) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post(server, path, payload):
    request = urllib.request.Request(
        server.url + path, data=json.dumps(payload).encode(), method="POST"
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _await_done(server, run_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, snap = _get(server, f"/v1/runs/{run_id}")
        assert status == 200
        if snap["status"] in ("done", "failed"):
            return snap
        time.sleep(0.05)
    raise AssertionError(f"run {run_id} did not finish within {timeout_s}s")


def _store_await_done(store, run_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        snap = store.snapshot(run_id)
        if snap["status"] in ("done", "failed"):
            assert snap["status"] == "done", snap.get("error")
            return snap
        time.sleep(0.05)
    raise AssertionError(f"run {run_id} did not finish within {timeout_s}s")


@pytest.fixture(scope="module")
def server():
    # A deliberately tiny ring: every run's history overflows into the
    # spool, so all module tests exercise the eviction + replay path.
    srv = create_server(port=0, workers=1, quiet=True, max_events_per_run=3)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.close()
    thread.join(timeout=10)


# -- event ring + spool -------------------------------------------------------


def test_ring_capped_history_replays_complete_and_gap_free():
    store = JobStore(workers=1, max_events_per_run=3)
    try:
        run_id = store.submit(parse_run_request(RUN_BODY))
        _store_await_done(store, run_id)
        events = [e for e in store.follow(run_id) if e is not None]
        # Complete from seq 0, strictly consecutive, terminal last.
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert events[0]["event"] == "queued"
        assert events[-1]["event"] == "report"
        assert len(events) > 3  # the history genuinely overflowed
        job = store._jobs[run_id]
        assert len(job.events) <= 3
        assert job.events_dropped == len(events) - len(job.events)
        # A second (late) follower replays the same full history.
        again = [e for e in store.follow(run_id) if e is not None]
        assert again == events
    finally:
        store.close()


def test_snapshot_progress_survives_ring_eviction():
    store = JobStore(workers=1, max_events_per_run=1)
    try:
        run_id = store.submit(parse_run_request(RUN_BODY))
        snap = _store_await_done(store, run_id)
        # Cell events were all evicted from the 1-slot ring; the
        # counter must still report every cell.
        assert snap["cells_done"] == snap["cells"] == 2
        assert snap["report"] is not None
    finally:
        store.close()


def test_unbounded_event_log_keeps_everything_in_ram():
    store = JobStore(workers=1, max_events_per_run=None)
    try:
        run_id = store.submit(parse_run_request(RUN_BODY))
        _store_await_done(store, run_id)
        job = store._jobs[run_id]
        assert job.events_dropped == 0
        assert store._spool is None
    finally:
        store.close()


def test_streaming_client_validates_spooled_history(server):
    """End-to-end: with a 3-event ring the client still sees the whole
    stream, schema-valid with strictly increasing seq (the client
    raises on any gap-induced regression or missing terminal)."""
    client = ServeClient(server.url)
    run_id = client.submit(RUN_BODY)
    events = list(client.events(run_id))
    kinds = [event["event"] for event in events]
    assert kinds[0] == "queued"
    assert kinds[-1] == "report"
    assert kinds.count("cell") == 2
    assert [e["seq"] for e in events] == list(range(len(events)))


# -- records pagination -------------------------------------------------------


def _records_run(server, body=RUN_BODY):
    status, submitted = _post(server, "/v1/runs", body)
    assert status == 202
    snap = _await_done(server, submitted["id"])
    assert snap["status"] == "done", snap.get("error")
    return submitted["id"]


def test_records_endpoint_pages_canonical_sequence(server):
    run_id = _records_run(server)
    status, full = _get(server, f"/v1/runs/{run_id}/records")
    assert status == 200
    assert full["run"] == run_id
    assert full["total"] == len(full["records"]) == 3
    assert full["cursor"] == 0
    assert full["next_cursor"] is None
    # Canonical merge order: ascending (submit_time, request_id).
    keys = [(r["submit_time"], r["request_id"]) for r in full["records"]]
    assert keys == sorted(keys)

    paged = []
    cursor = 0
    while cursor is not None:
        status, page = _get(
            server, f"/v1/runs/{run_id}/records?cursor={cursor}&limit=2"
        )
        assert status == 200
        assert len(page["records"]) <= 2
        paged.extend(page["records"])
        cursor = page["next_cursor"]
    assert paged == full["records"]

    # Past-the-end cursor: an empty terminal page, not an error.
    status, past = _get(server, f"/v1/runs/{run_id}/records?cursor=99")
    assert status == 200
    assert past["records"] == [] and past["next_cursor"] is None


def test_records_endpoint_rejects_bad_query(server):
    run_id = _records_run(server)
    for query in ("cursor=x", "limit=0", "cursor=-1"):
        status, body = _get(server, f"/v1/runs/{run_id}/records?{query}")
        assert status == 400, (query, body)
    status, body = _get(server, "/v1/runs/run-999999/records")
    assert status == 404


def test_records_unavailable_before_done_and_after_drop():
    store = JobStore(workers=1, max_record_runs=1)
    try:
        store._jobs["run-999990"] = Job(
            id="run-999990", request=None, status="running"
        )
        with pytest.raises(RecordsUnavailable, match="is running"):
            store.records_page("run-999990")
        first = store.submit(parse_run_request(RUN_BODY))
        _store_await_done(store, first)
        assert store.records_page(first)["total"] == 3
        second = store.submit(parse_run_request(RUN_BODY))
        _store_await_done(store, second)
        # The retention window holds one run's records: the older
        # handle dropped, its report stayed.
        with pytest.raises(RecordsUnavailable, match="no longer retains"):
            store.records_page(first)
        assert store.snapshot(first)["report"] is not None
        assert store.records_page(second)["total"] == 3
    finally:
        store.close()


def test_journal_restored_runs_answer_409_for_records(tmp_path):
    from repro.serve.journal import RunJournal

    journal = tmp_path / "journal.jsonl"
    store = JobStore(workers=1, journal=RunJournal(str(journal)))
    try:
        run_id = store.submit(parse_run_request(RUN_BODY))
        _store_await_done(store, run_id)
    finally:
        store.close()
    restored = JobStore(workers=1, journal=RunJournal(str(journal)))
    try:
        assert restored.snapshot(run_id)["status"] == "done"
        with pytest.raises(RecordsUnavailable, match="no longer retains"):
            restored.records_page(run_id)
    finally:
        restored.close()


def test_spill_sink_run_pages_records_and_matches_memory(server):
    memory_id = _records_run(server)
    spill_id = _records_run(
        server,
        dict(RUN_BODY, record_sink="spill", max_records_in_memory=1),
    )
    _, memory_snap = _get(server, f"/v1/runs/{memory_id}")
    _, spill_snap = _get(server, f"/v1/runs/{spill_id}")
    assert spill_snap["request"]["record_sink"] == "spill"
    assert spill_snap["report"] == memory_snap["report"]
    _, memory_records = _get(server, f"/v1/runs/{memory_id}/records")
    _, spill_records = _get(server, f"/v1/runs/{spill_id}/records")
    assert spill_records["records"] == memory_records["records"]


def test_record_sink_validation_errors(server):
    status, body = _post(
        server, "/v1/runs", dict(RUN_BODY, record_sink="tape")
    )
    assert status == 400 and "record_sink" in body["error"]
    status, body = _post(
        server, "/v1/runs", dict(RUN_BODY, max_records_in_memory=5)
    )
    assert status == 400 and "max_records_in_memory" in body["error"]
    status, body = _post(
        server, "/v1/runs",
        dict(RUN_BODY, record_sink="spill", max_records_in_memory=0),
    )
    assert status == 400


def test_client_records_generator_pages_transparently(server):
    client = ServeClient(server.url)
    run_id = _records_run(server)
    _, full = _get(server, f"/v1/runs/{run_id}/records")
    assert list(client.records(run_id, page_size=1)) == full["records"]
    with pytest.raises(Exception, match="HTTP 404"):
        list(client.records("run-999999"))


# -- runs pagination ----------------------------------------------------------


def test_runs_listing_pages_with_stable_cursor(server):
    ids = [_records_run(server) for _ in range(3)]
    status, full = _get(server, "/v1/runs")
    assert status == 200
    listed = [row["id"] for row in full["runs"]]
    assert full["next_cursor"] is None
    assert [i for i in listed if i in ids] == ids  # submission order

    seen = []
    cursor = ""
    while cursor is not None:
        suffix = f"&cursor={cursor}" if cursor else ""
        status, page = _get(server, f"/v1/runs?limit=2{suffix}")
        assert status == 200
        assert len(page["runs"]) <= 2
        seen.extend(row["id"] for row in page["runs"])
        cursor = page["next_cursor"]
    assert seen == listed

    status, _body = _get(server, "/v1/runs?limit=0")
    assert status == 400


def test_runs_cursor_stable_under_eviction():
    store = JobStore(workers=1, max_finished=2)
    try:
        ids = [store.submit(parse_run_request(RUN_BODY)) for _ in range(2)]
        for run_id in ids:
            _store_await_done(store, run_id)
        page, cursor = store.list_page(limit=1)
        assert [row["id"] for row in page] == [ids[0]] and cursor == ids[0]
        # Two more submissions evict both original runs (max_finished=2);
        # the held cursor still resumes correctly — monotonic ids mean
        # already-seen ids can only disappear, never reorder, so the
        # walk continues at the first retained id past the cursor.
        more = [store.submit(parse_run_request(RUN_BODY)) for _ in range(2)]
        for run_id in more:
            _store_await_done(store, run_id)
        rest, cursor = store.list_page(cursor=cursor)
        assert [row["id"] for row in rest] == more
        assert cursor is None
    finally:
        store.close()


def test_client_runs_pages_transparently(server):
    client = ServeClient(server.url)
    _records_run(server)
    status, full = _get(server, "/v1/runs")
    assert status == 200
    assert client.runs(page_size=2) == full["runs"]
    assert client.runs() == full["runs"]


# -- CLI wiring ---------------------------------------------------------------


def test_cli_serve_rejects_bad_event_cap(capsys):
    assert main(["serve", "--max-events-per-run", "0"]) == 2
    assert "--max-events-per-run" in capsys.readouterr().err
