"""Unit tests for placement policies, dispatchers, and eviction."""

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    DataFlowerSystem,
    Environment,
    FaasFlowSystem,
    RequestSpec,
    SonicSystem,
    round_robin,
    single_node,
)
from repro.apps import get_app
from repro.cluster import ContainerPool, ContainerSpec
from repro.systems.base import FunctionDispatcher
from repro.systems.placement import get_policy, hashed, offset_round_robin


def make_cluster():
    env = Environment()
    return env, Cluster(env, ClusterConfig())


# -- placement -----------------------------------------------------------------


def test_round_robin_spreads_in_topological_order():
    env, cluster = make_cluster()
    workflow = get_app("wc").build()
    placement = round_robin(workflow, cluster.workers)
    assert placement["wordcount_start"].name == "worker1"
    assert placement["wordcount_count"].name == "worker2"
    assert placement["wordcount_merge"].name == "worker3"


def test_single_node_packs_everything():
    env, cluster = make_cluster()
    workflow = get_app("vid").build()
    placement = single_node(workflow, cluster.workers)
    assert len({node.name for node in placement.values()}) == 1


def test_offset_round_robin_shifts():
    env, cluster = make_cluster()
    workflow = get_app("wc").build()
    base = round_robin(workflow, cluster.workers)
    shifted = offset_round_robin(1)(workflow, cluster.workers)
    assert shifted["wordcount_start"].name == "worker2"
    assert base["wordcount_start"].name != shifted["wordcount_start"].name


def test_hashed_is_deterministic():
    env, cluster = make_cluster()
    workflow = get_app("svd").build()
    assert hashed(workflow, cluster.workers) == hashed(workflow, cluster.workers)


def test_policy_registry():
    assert get_policy("round_robin") is round_robin
    with pytest.raises(KeyError):
        get_policy("banana")


def test_placement_requires_workers():
    workflow = get_app("wc").build()
    with pytest.raises(ValueError):
        round_robin(workflow, [])


def test_deployment_rejects_partial_placement():
    env, cluster = make_cluster()
    system = DataFlowerSystem(env, cluster)
    workflow = get_app("wc").build()
    with pytest.raises(ValueError, match="missing"):
        system.deploy(workflow, {"wordcount_start": cluster.workers[0]})


def test_duplicate_deployment_rejected():
    env, cluster = make_cluster()
    system = DataFlowerSystem(env, cluster)
    workflow = get_app("wc").build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))
    with pytest.raises(ValueError, match="already deployed"):
        system.deploy(workflow, round_robin(workflow, cluster.workers))


def test_submit_to_unknown_workflow():
    env, cluster = make_cluster()
    system = DataFlowerSystem(env, cluster)
    with pytest.raises(KeyError):
        system.submit("ghost", RequestSpec("r", input_bytes=1))


# -- dispatcher -----------------------------------------------------------------


def make_dispatcher(env, cluster, memory_mb=128):
    pool = ContainerPool(
        env, cluster.workers[0], "f", ContainerSpec(memory_mb=memory_mb),
        cold_start_s=0.1, env_setup_s=0.1,
    )
    return FunctionDispatcher(env, pool)


def test_dispatcher_scales_out_on_demand():
    env, cluster = make_cluster()
    dispatcher = make_dispatcher(env, cluster)
    seen = []
    for i in range(3):
        dispatcher.submit(lambda c, i=i: seen.append((i, c.container_id)))
    env.run(until=1.0)
    assert len(seen) == 3
    assert dispatcher.pool.cold_starts == 3


def test_dispatcher_reuses_idle_containers():
    env, cluster = make_cluster()
    dispatcher = make_dispatcher(env, cluster)
    order = []

    def job(container):
        order.append(container.container_id)

        def work():
            yield env.timeout(0.05)
            dispatcher.release(container)

        env.process(work())

    dispatcher.submit(job)
    env.run(until=1.0)
    dispatcher.submit(job)
    env.run(until=2.0)
    assert len(order) == 2
    assert order[0] == order[1]  # warm reuse, no second cold start
    assert dispatcher.pool.cold_starts == 1


def test_dispatcher_blocked_release_delays_reuse():
    env, cluster = make_cluster()
    dispatcher = make_dispatcher(env, cluster)
    starts = []

    def job(container):
        starts.append(env.now)
        dispatcher.release(container, delay_s=5.0)  # pressure block

    dispatcher.submit(job)
    env.run(until=1.0)
    dispatcher.submit(lambda c: starts.append(env.now))
    env.run(until=3.0)
    # A second container boots (0.2 s) rather than waiting 5 s.
    assert len(starts) == 2
    assert starts[1] < 2.0
    assert dispatcher.pool.cold_starts == 2


def test_eviction_frees_capacity_for_other_functions():
    from repro.cluster import ScalingPolicy

    env, cluster = make_cluster()
    node = cluster.workers[0]
    # Fill the node's memory with big idle containers of function A
    # (memory-heavy, CPU-light spec so memory is the binding resource).
    spec = ContainerSpec(
        memory_mb=int(node.memory_total / (1024 * 1024) // 4),
        scaling=ScalingPolicy(cores_per_base=0.001),
    )
    pool_a = ContainerPool(env, node, "a", spec, cold_start_s=0.0, env_setup_s=0.0)
    for _ in range(4):
        env.run(until=pool_a.start_new())
    assert not node.can_fit(0.1, spec.memory_bytes)

    pool_b = ContainerPool(env, node, "b", spec, cold_start_s=0.0, env_setup_s=0.0)
    dispatcher_b = FunctionDispatcher(env, pool_b)
    served = []
    dispatcher_b.submit(lambda c: served.append(c.container_id))
    env.run(until=1.0)
    assert served, "eviction failed to free capacity"
    assert node.evictions >= 1
    assert pool_a.size < 4


def test_eviction_respects_recycle_guard():
    from repro.cluster import ScalingPolicy

    env, cluster = make_cluster()
    node = cluster.workers[0]
    spec = ContainerSpec(
        memory_mb=int(node.memory_total / (1024 * 1024) // 2),
        scaling=ScalingPolicy(cores_per_base=0.001),
    )
    pool_a = ContainerPool(
        env, node, "a", spec, cold_start_s=0.0, env_setup_s=0.0,
        recycle_guard=lambda c: False,  # e.g. DLU still draining
    )
    for _ in range(2):
        env.run(until=pool_a.start_new())
    assert not node.try_reclaim(spec.cpu_cores, spec.memory_bytes)
    assert pool_a.size == 2


# -- cross-system sanity ------------------------------------------------------------


@pytest.mark.parametrize("system_cls", [FaasFlowSystem, SonicSystem])
def test_control_flow_tasks_strictly_ordered(system_cls):
    """Control flow: a consumer never starts before its producer ends."""
    env, cluster = make_cluster()
    system = system_cls(env, cluster)
    app = get_app("wc")
    workflow = app.build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))
    done = system.submit(
        workflow.name,
        RequestSpec("r", input_bytes=app.default_input_bytes, fanout=4),
    )
    record = env.run(until=done)
    start_end = record.task("wordcount_start").exec_end
    for task in record.tasks:
        if task.function == "wordcount_count":
            assert task.exec_start >= start_end
