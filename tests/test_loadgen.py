"""Tests for arrival schedules and the run harness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Cluster,
    ClusterConfig,
    DataFlowerSystem,
    Environment,
    burst,
    constant,
    default_request_factory,
    round_robin,
    run_closed_loop,
    run_open_loop,
)
from repro.apps import get_app
from repro.loadgen.arrivals import RateSegment, arrival_times, total_duration


# -- arrivals -----------------------------------------------------------------


def test_constant_schedule_paced():
    times = arrival_times(constant(60, 10.0))
    assert len(times) == 10
    assert times[0] == 0.0
    assert times[1] == pytest.approx(1.0)


def test_zero_rate_produces_nothing():
    assert arrival_times(constant(0, 60.0)) == []


def test_burst_schedule_counts():
    # The paper's Figure 15: 10 rpm for 60 s then 100 rpm for 60 s = 110.
    times = arrival_times(burst(10, 100, 60.0, 60.0))
    assert len(times) == 110
    assert sum(1 for t in times if t < 60.0) == 10


def test_poisson_is_deterministic_per_seed():
    a = arrival_times(constant(120, 30.0), poisson=True, seed=5)
    b = arrival_times(constant(120, 30.0), poisson=True, seed=5)
    c = arrival_times(constant(120, 30.0), poisson=True, seed=6)
    assert a == b
    assert a != c


def test_rate_segment_validation():
    with pytest.raises(ValueError):
        RateSegment(duration_s=0, rate_rpm=10)
    with pytest.raises(ValueError):
        RateSegment(duration_s=10, rate_rpm=-1)


def test_total_duration():
    assert total_duration(burst(1, 2, 30.0, 45.0)) == 75.0


@settings(max_examples=40, deadline=None)
@given(
    rate=st.floats(min_value=1, max_value=600),
    duration=st.floats(min_value=1, max_value=120),
)
def test_property_arrivals_within_schedule(rate, duration):
    times = arrival_times(constant(rate, duration))
    assert all(0 <= t < duration for t in times)
    expected = rate / 60.0 * duration
    assert abs(len(times) - expected) <= 1


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_property_poisson_arrivals_sorted(seed):
    times = arrival_times(constant(300, 20.0), poisson=True, seed=seed)
    assert times == sorted(times)
    assert all(0 <= t < 20.0 for t in times)


# -- runner -------------------------------------------------------------------


def make_system():
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(env, cluster)
    app = get_app("wc")
    workflow = app.build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))
    factory = default_request_factory(
        system, workflow.name, app.default_input_bytes, app.default_fanout
    )
    return system, workflow, factory


def test_open_loop_offers_scheduled_count():
    system, workflow, factory = make_system()
    result = run_open_loop(system, workflow.name, factory, constant(30, 20.0))
    assert result.offered == 10
    assert len(result.completed) == 10
    assert result.failure_rate == 0.0
    assert result.usage is not None


def test_open_loop_timeout_marks_failure():
    system, workflow, factory = make_system()
    result = run_open_loop(
        system, workflow.name, factory, constant(30, 10.0), timeout_s=0.05
    )
    assert len(result.failed) == result.offered
    assert all(r.error == "timeout" for r in result.failed)
    assert result.all_failed


def test_closed_loop_throughput():
    system, workflow, factory = make_system()
    result = run_closed_loop(system, workflow.name, factory, clients=4,
                             duration_s=20.0)
    assert result.offered > 4
    assert result.throughput_rpm() > 0
    # Clients never have more than one request outstanding each: the
    # number in flight is bounded, so offered stays sane.
    assert result.offered < 4 * 20.0 / 0.1


def test_closed_loop_requires_clients():
    system, workflow, factory = make_system()
    with pytest.raises(ValueError):
        run_closed_loop(system, workflow.name, factory, clients=0, duration_s=5)


def test_latency_summary_from_run():
    system, workflow, factory = make_system()
    result = run_open_loop(system, workflow.name, factory, constant(60, 10.0))
    summary = result.latency()
    assert summary.count == result.offered
    assert summary.p99_s >= summary.p50_s
