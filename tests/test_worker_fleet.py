"""Cross-engine conformance suite for the remote worker fleet.

The control-plane split's acceptance criteria, proven end to end:

- **Byte-identity matrix** — the same trace replayed by the local
  streamed engine (shards 1/2/4), the local batched engine
  (shards 1/2/4), and the remote fleet (1/2/4 in-process workers
  speaking the real lease/complete protocol, results JSON-round-tripped
  like the wire does) produces ONE SHA-256 over the rendered report.
- **Lease lifecycle under a fake clock** — expiry, requeue with a
  charged attempt, retry-budget exhaustion into a ``lease-expired``
  cell failure, stale-result rejection, and dead-worker eviction, all
  driven by ``WorkerRegistry(clock=...)`` + ``expire(now)`` with zero
  sleeps.
- **Chaos** — a real ``repro serve --journal`` control plane with two
  real ``repro worker`` subprocesses, one SIGKILLed while it provably
  holds a lease: the lease expires, the survivor re-leases the cell,
  and the finished report is byte-identical to an uninterrupted local
  run with every cell journaled exactly once.

All waiting is predicate-polling (`_await`) or blocking on the fleet's
own result iterator — never bare sleeps standing in for synchronization
(the ``tests/test_serve_recovery.py`` discipline).
"""

import hashlib
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.loadgen.trace import synthesize_trace
from repro.metrics.report import render_json
from repro.metrics.telemetry import MetricsRegistry
from repro.parallel import ReplaySpec, RetryPolicy, run_parallel_replay
from repro.parallel.engine import (
    CellFailure,
    _replay_cell_task,
    fold_remote_cells,
)
from repro.parallel.policy import get_shard_policy
from repro.serve.jobs import JobStore
from repro.serve.validation import BadRequest, parse_run_request
from repro.serve.workers import (
    FleetCancelled,
    StaleLease,
    UnknownWorker,
    WorkerAuthError,
    WorkerRegistry,
)
from repro.worker import _execute_grant

ROOT = Path(__file__).resolve().parent.parent

_LISTENING = re.compile(r"listening on (http://[0-9.]+:\d+)")
_WORKER_BANNER = re.compile(r"repro worker (w-\d+) serving")


def _sha(report_text):
    return hashlib.sha256(report_text.encode("utf-8")).hexdigest()


def _await(predicate, timeout_s, what):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value is not None:
            return value
        time.sleep(0.02)
    raise AssertionError(f"timed out after {timeout_s}s waiting for {what}")


# -- in-process fleet harness ------------------------------------------------------


def _fleet_report(trace, spec, worker_count, retry=None, metrics=None):
    """Replay ``trace`` through the real lease protocol with in-process
    worker threads, and fold through the real remote path.

    Each worker thread is the ``repro worker`` loop minus sockets: it
    registers, leases, replays via the engine's per-attempt entry
    point, and completes with a JSON-round-tripped ``to_payload`` —
    exactly what crosses the wire — so the fold exercises
    ``CellResult.from_payload`` on every cell.
    """
    registry = WorkerRegistry(metrics=metrics)
    cells = dict(get_shard_policy("tenant").split(trace))
    job = registry.submit(
        "job-test", {}, sorted(cells), retry=retry or RetryPolicy()
    )

    def worker_loop():
        worker_id = registry.register()["worker"]
        while True:
            try:
                grant = registry.lease(worker_id, wait_s=0.2)
            except (UnknownWorker, FleetCancelled):
                return
            if grant is None:
                if job.done or job.cancelled:
                    return
                continue
            result = _replay_cell_task(
                spec, grant["cell"], cells[grant["cell"]],
                grant["attempt"], retry or RetryPolicy(), None,
            )
            payload = json.loads(json.dumps(result.to_payload()))
            try:
                registry.complete(grant["lease"], worker_id, result=payload)
            except StaleLease:
                continue

    threads = [
        threading.Thread(target=worker_loop, daemon=True)
        for _ in range(worker_count)
    ]
    for thread in threads:
        thread.start()
    try:
        result = fold_remote_cells(
            trace, spec, registry.results(job), metrics=metrics
        )
    finally:
        registry.close()
        for thread in threads:
            thread.join(timeout=30)
    return render_json(result.to_dict())


def _conformance_trace(tenants=6, duration_s=30.0, mean_rpm=60.0, seed=5):
    return synthesize_trace(
        tenants=tenants, duration_s=duration_s, mean_rpm=mean_rpm, seed=seed
    )


def test_fleet_streamed_batched_agree_byte_for_byte():
    """The headline matrix: local streamed x shards, local batched x
    shards, remote fleet x worker counts — one SHA-256."""
    trace = _conformance_trace()
    spec = ReplaySpec(default_app="wc", seed=7)
    hashes = {}
    for shards in (1, 2, 4):
        streamed = run_parallel_replay(
            trace, spec, shards=shards, workers=1, stream=True
        )
        hashes[f"streamed/shards={shards}"] = _sha(
            render_json(streamed.to_dict())
        )
        batched = run_parallel_replay(
            trace, spec, shards=shards, workers=1, stream=False
        )
        hashes[f"batched/shards={shards}"] = _sha(
            render_json(batched.to_dict())
        )
    for workers in (1, 2, 4):
        hashes[f"fleet/workers={workers}"] = _sha(
            _fleet_report(trace, spec, workers)
        )
    assert len(set(hashes.values())) == 1, hashes


def test_fleet_fold_counts_cells_into_metrics():
    trace = _conformance_trace(tenants=3, duration_s=10.0, mean_rpm=40.0)
    spec = ReplaySpec(default_app="wc", seed=3)
    metrics = MetricsRegistry()
    _fleet_report(trace, spec, 2, metrics=metrics)
    assert metrics.counter_total("repro_leases_granted_total") == 3
    assert metrics.counter_total("repro_lease_results_total") == 3
    assert metrics.counter_total("repro_cells_completed_total") == 3


# -- hypothesis property -----------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from test_replay_properties import _skewed_events, events  # noqa: E402

from repro.loadgen.trace import InvocationTrace  # noqa: E402


@settings(max_examples=2, deadline=None,
          suppress_health_check=list(HealthCheck))
@given(events=events, seed=st.integers(0, 2**16))
def test_fleet_matches_local_engines_on_skewed_traces(events, seed):
    """Property form of the matrix: over random skewed multi-tenant
    traces, 1/2/4 remote workers hash identically to the local
    streamed and batched engines."""
    trace = InvocationTrace(events=_skewed_events(events), name="prop-fleet")
    spec = ReplaySpec(default_app="wc", seed=seed)
    local = {
        _sha(render_json(
            run_parallel_replay(
                trace, spec, shards=2, workers=1, stream=stream
            ).to_dict()
        ))
        for stream in (True, False)
    }
    fleet = {
        _sha(_fleet_report(trace, spec, workers)) for workers in (1, 2, 4)
    }
    assert local == fleet and len(local) == 1


# -- lease lifecycle under a fake clock --------------------------------------------


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _lifecycle_registry(max_attempts=3, on_event=None):
    clock = FakeClock()
    metrics = MetricsRegistry()
    registry = WorkerRegistry(
        lease_timeout_s=30.0, heartbeat_timeout_s=90.0,
        clock=clock, metrics=metrics, on_event=on_event,
    )
    job = registry.submit(
        "run-000001", {}, ["tenant-0"],
        retry=RetryPolicy(max_attempts=max_attempts),
    )
    return registry, clock, metrics, job


def test_expired_lease_requeues_with_charged_attempt():
    fleet_events = []
    registry, clock, metrics, job = _lifecycle_registry(
        on_event=lambda job_id, kind, body: fleet_events.append((kind, body))
    )
    worker = registry.register(name="flaky")["worker"]
    first = registry.lease(worker)
    assert first["cell"] == "tenant-0" and first["attempt"] == 1

    clock.advance(30.0)  # exactly the deadline: expired
    registry.expire()
    assert metrics.counter_total("repro_leases_expired_total") == 1

    second = registry.lease(worker)
    assert second["attempt"] == 2, "requeue must charge the attempt"
    assert second["lease"] != first["lease"]
    kinds = [kind for kind, _ in fleet_events]
    assert kinds == ["lease", "lease_expired", "lease"]
    expired_body = fleet_events[1][1]
    assert expired_body["requeued"] is True
    assert expired_body["cell"] == "tenant-0"

    # The original worker's late result is rejected, not folded.
    late = {
        "key": "tenant-0", "offered": 0, "duration_s": 0.0, "wall_s": 0.0,
        "tenant_of": {}, "usage": None, "latency": None, "records": [],
    }
    with pytest.raises(StaleLease):
        registry.complete(first["lease"], worker, result=late)
    snapshot = metrics.snapshot()["repro_lease_results_total"]
    assert snapshot[(("status", "stale"),)] == 1.0


def test_lease_expiry_exhausts_retries_into_lease_expired_failure():
    registry, clock, metrics, job = _lifecycle_registry(max_attempts=2)
    worker = registry.register()["worker"]
    for expected_attempt in (1, 2):
        grant = registry.lease(worker)
        assert grant["attempt"] == expected_attempt
        clock.advance(30.0)
        registry.expire()
    outcomes = list(registry.results(job))
    assert len(outcomes) == 1
    failure = outcomes[0]
    assert isinstance(failure, CellFailure)
    assert failure.kind == "lease-expired"
    assert failure.key == "tenant-0"
    assert failure.attempts == 2
    assert registry.lease(worker) is None  # nothing left to hand out
    assert metrics.counter_total("repro_leases_expired_total") == 2


def test_silent_worker_is_evicted_and_its_leases_requeue():
    registry, clock, metrics, job = _lifecycle_registry()
    dead = registry.register(name="doomed")["worker"]
    grant = registry.lease(dead)
    assert grant is not None

    clock.advance(90.0)  # past the heartbeat deadline
    live = registry.register(name="survivor")["worker"]  # entry sweeps
    assert metrics.counter_total("repro_workers_evicted_total") == 1
    with pytest.raises(UnknownWorker):
        registry.heartbeat(dead)
    with pytest.raises(UnknownWorker):
        registry.lease(dead)

    # The evicted worker's lease expired with it; the survivor gets the
    # cell on the next attempt.
    regrant = registry.lease(live)
    assert regrant["cell"] == grant["cell"]
    assert regrant["attempt"] == 2
    names = {w["name"] for w in registry.snapshot()["workers"]}
    assert names == {"survivor"}


def test_heartbeat_keeps_worker_alive_across_sweeps():
    registry, clock, metrics, job = _lifecycle_registry()
    worker = registry.register()["worker"]
    for _ in range(4):
        clock.advance(60.0)
        registry.heartbeat(worker)
    registry.expire()
    assert metrics.counter_total("repro_workers_evicted_total") == 0
    assert registry.lease(worker) is not None


def test_result_for_wrong_cell_key_leaves_lease_active():
    registry, clock, metrics, job = _lifecycle_registry()
    worker = registry.register()["worker"]
    grant = registry.lease(worker)
    bogus = {
        "key": "tenant-wrong", "offered": 0, "duration_s": 0.0,
        "wall_s": 0.0, "tenant_of": {}, "usage": None, "latency": None,
        "records": [],
    }
    with pytest.raises(ValueError):
        registry.complete(grant["lease"], worker, result=bogus)
    # The lease survived the bad payload; the real result still lands.
    snapshot = registry.snapshot()
    assert snapshot["active_leases"] == 1


# -- JobStore remote mode ----------------------------------------------------------

RUN_BODY = {
    "app": "wc",
    "seed": 7,
    "synth": {"tenants": 6, "duration_s": 30, "mean_rpm": 60, "seed": 5},
}


def _drive_store_fleet(store, stop):
    """A `repro worker` loop against an in-process JobStore's fleet."""
    worker_id = store.fleet.register(name="inproc")["worker"]
    while not stop.is_set():
        try:
            grant = store.fleet.lease(worker_id, wait_s=0.2)
        except (UnknownWorker, FleetCancelled):
            return
        if grant is None:
            continue
        outcome = _execute_grant(grant)
        try:
            store.fleet.complete(grant["lease"], worker_id, **outcome)
        except StaleLease:
            continue


def _finish(store, run_id, timeout_s=120):
    def finished():
        snap = store.snapshot(run_id)
        return snap if snap["status"] not in ("queued", "running") else None

    return _await(finished, timeout_s, f"run {run_id} to finish")


def test_jobstore_remote_run_matches_local_run_byte_for_byte(tmp_path):
    """`"workers": "remote"` through the full JobStore — validation,
    fleet, fold, journal — lands the same bytes as `"workers": 1`,
    with every cell journaled exactly once, including when the worker
    reports a retried failure."""
    from repro.serve.journal import RunJournal

    journal_path = tmp_path / "journal.jsonl"
    local_store = JobStore(workers=1)
    try:
        local_id = local_store.submit(
            parse_run_request({**RUN_BODY, "workers": 1})
        )
        local = _finish(local_store, local_id)
        assert local["status"] == "done", local.get("error")
        control = render_json(local["report"])
    finally:
        local_store.close()

    body = {
        **RUN_BODY,
        "workers": "remote",
        "retry": {"max_attempts": 2},
        # Poison the hottest cell's first attempt: the worker reports a
        # classified error, the control plane charges the attempt and
        # requeues, and attempt 2 succeeds.
        "faults": [{"kind": "poison", "cell": "tenant0", "attempt": 1}],
    }
    store = JobStore(workers=1, journal=RunJournal(str(journal_path)))
    stop = threading.Event()
    thread = threading.Thread(
        target=_drive_store_fleet, args=(store, stop), daemon=True
    )
    thread.start()
    try:
        run_id = store.submit(parse_run_request(body))
        snap = _finish(store, run_id)
        assert snap["status"] == "done", snap.get("error")
        assert render_json(snap["report"]) == control
        results = store.metrics.snapshot()["repro_lease_results_total"]
        assert results[(("status", "error"),)] == 1.0
        assert results[(("status", "ok"),)] == 6.0
    finally:
        stop.set()
        store.close()
        thread.join(timeout=30)

    journaled = [
        json.loads(line)["key"]
        for line in journal_path.read_text().splitlines()
        if line and json.loads(line).get("rec") == "cell"
    ]
    assert sorted(journaled) == sorted(set(journaled)), (
        "a cell was journaled more than once"
    )
    assert len(journaled) == 6


def test_jobstore_remote_run_applies_server_default_tenant_config():
    """A serve-level ``--tenant-config`` must reach remote workers: the
    control plane injects it inline into the shipped payload, because a
    worker re-validates that payload with no server defaults in scope —
    a bare payload would replay cells without the profiles and fold the
    divergent residues silently."""
    from repro.parallel.profiles import TenantConfig

    config = TenantConfig.from_payload({"default": {"system": "faasflow"}})
    config.validate("dataflower", "round_robin")
    body = {**RUN_BODY, "workers": "remote"}  # no inline tenant_config
    request = parse_run_request(body, config)
    control = render_json(
        run_parallel_replay(
            request.trace, request.spec, shards=1, workers=1
        ).to_dict()
    )
    bare = parse_run_request(dict(RUN_BODY))
    assert control != render_json(
        run_parallel_replay(
            bare.trace, bare.spec, shards=1, workers=1
        ).to_dict()
    ), "the config must be load-bearing or this test proves nothing"

    store = JobStore(workers=1, default_tenant_config=config)
    stop = threading.Event()
    thread = threading.Thread(
        target=_drive_store_fleet, args=(store, stop), daemon=True
    )
    thread.start()
    try:
        run_id = store.submit(parse_run_request(body, config))
        snap = _finish(store, run_id)
        assert snap["status"] == "done", snap.get("error")
        assert render_json(snap["report"]) == control
    finally:
        stop.set()
        store.close()
        thread.join(timeout=30)


def test_worker_execution_skips_retry_backoff(monkeypatch):
    """A retried grant must not sleep out its backoff inside the lease
    window: the requeue round-trip already spaced the attempts, and with
    a short ``--lease-timeout-s`` the sleep would expire every retry
    before its result could land."""
    calls = []
    monkeypatch.setattr(
        RetryPolicy,
        "backoff_s",
        lambda self, seed, key, attempt: calls.append(attempt) or 0.0,
    )
    grant = {
        "lease": "l-00000001",
        "run_id": "run-000001",
        "cell": "tenant0",
        "attempt": 2,
        "request": {
            "app": "wc",
            "seed": 3,
            "synth": {"tenants": 1, "duration_s": 5,
                      "mean_rpm": 30, "seed": 5},
        },
    }
    outcome = _execute_grant(grant)
    assert "result" in outcome, outcome
    assert calls == [], "worker-side retry backoff must be skipped"


def test_workers_field_rejects_unknown_strings():
    with pytest.raises(BadRequest, match="'remote'"):
        parse_run_request({**RUN_BODY, "workers": "local"})


# -- per-worker secrets ------------------------------------------------------------


def test_registry_mints_and_verifies_worker_secrets():
    registry = WorkerRegistry()
    first = registry.register()
    second = registry.register()
    assert first["secret"] and first["secret"] != second["secret"]
    registry.verify_secret(first["worker"], first["secret"])  # no raise
    with pytest.raises(WorkerAuthError):
        registry.verify_secret(first["worker"], second["secret"])
    with pytest.raises(WorkerAuthError):
        registry.verify_secret(first["worker"], None)
    # Unknown ids pass through: the caller's own lookup answers the
    # accurate UnknownWorker/StaleLease instead.
    registry.verify_secret("w-999999", "whatever")
    assert "secret" not in json.dumps(registry.snapshot())


def _http(url, body, timeout=10):
    """(status, parsed JSON body or None) for one POST, errors included."""
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            raw = resp.read()
            return resp.status, json.loads(raw) if raw else None
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        return exc.code, json.loads(raw) if raw else None


def test_fleet_http_surface_requires_worker_secret():
    """The HTTP layer is the trust boundary: a fleet POST naming a live
    worker id but carrying a wrong or missing secret is refused 403 and
    changes nothing (``docs/workers.md``, "Trust model")."""
    from repro.serve import create_server

    srv = create_server(port=0, workers=1, quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        base = srv.url
        status, grant = _http(f"{base}/v1/workers", {"name": "authed"})
        assert status == 200
        worker_id, secret = grant["worker"], grant["secret"]
        assert secret

        for body in ({"secret": "forged"}, {}):
            status, payload = _http(
                f"{base}/v1/workers/{worker_id}/heartbeat", body
            )
            assert status == 403, payload
        status, _payload = _http(
            f"{base}/v1/cells/lease",
            {"worker": worker_id, "secret": "forged", "wait_s": 0},
        )
        assert status == 403
        status, _payload = _http(
            f"{base}/v1/cells/l-00000001/result",
            {"worker": worker_id, "secret": "forged",
             "error": {"kind": "app-error", "message": "forged"}},
        )
        assert status == 403

        # The issued secret sails through (204: nothing queued).
        status, _payload = _http(
            f"{base}/v1/workers/{worker_id}/heartbeat", {"secret": secret}
        )
        assert status == 200
        status, _payload = _http(
            f"{base}/v1/cells/lease",
            {"worker": worker_id, "secret": secret, "wait_s": 0},
        )
        assert status == 204
        # An unknown worker id still reads 404, not 403 — the auth path
        # leaks nothing the fleet snapshot doesn't already publish.
        status, _payload = _http(
            f"{base}/v1/cells/lease", {"worker": "w-999999", "wait_s": 0}
        )
        assert status == 404
        assert "secret" not in json.dumps(_request(f"{base}/v1/workers"))
    finally:
        srv.close()
        thread.join(timeout=10)


# -- chaos: SIGKILL a real worker subprocess mid-cell ------------------------------

CHAOS_BODY = {
    "app": "wc",
    "seed": 7,
    "workers": "remote",
    "synth": {"tenants": 8, "duration_s": 60, "mean_rpm": 120, "seed": 5},
}

#: Lease deadline for the chaos run: far above any single cell's wall
#: time (cells run ~1s here), far below the test timeout, so recovery
#: from the SIGKILL is prompt but live cells never expire spuriously.
CHAOS_LEASE_TIMEOUT_S = 6.0


def _spawn(argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, text=True,
    )


def _request(url, body=None, timeout=10):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if body else {},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def _metric_total(base, name):
    with urllib.request.urlopen(f"{base}/metrics", timeout=10) as resp:
        text = resp.read().decode()
    total = 0.0
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            rest = line[len(name):]
            if rest[:1] in (" ", "{"):
                total += float(line.rsplit(" ", 1)[1])
    return total


def _journaled_cells(journal_path, run_id):
    keys = []
    if not journal_path.exists():
        return keys
    for line in journal_path.read_text(errors="replace").split("\n")[:-1]:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("rec") == "cell" and record.get("run") == run_id:
            keys.append(record["key"])
    return keys


def _freeze_a_lease_holder(base, procs_by_worker_id):
    """SIGSTOP a worker while the control plane shows it holding a
    lease; re-verify after the freeze (twice, with a round trip in
    between) so an in-flight result cannot have released it."""

    def try_freeze():
        snap = _request(f"{base}/v1/workers")
        for worker in snap["workers"]:
            if worker["leases"] and worker["id"] in procs_by_worker_id:
                proc = procs_by_worker_id[worker["id"]]
                os.kill(proc.pid, signal.SIGSTOP)
                held = all(
                    any(
                        w["id"] == worker["id"] and w["leases"]
                        for w in _request(f"{base}/v1/workers")["workers"]
                    )
                    for _ in range(2)
                )
                if held:
                    return worker["id"], proc
                os.kill(proc.pid, signal.SIGCONT)
        return None

    return _await(try_freeze, 60, "a worker holding a lease")


def test_sigkilled_worker_lease_expires_and_report_stays_identical(tmp_path):
    """The chaos pin: SIGKILL one of two real workers mid-cell; the
    lease expires, the survivor finishes the run, the report is
    byte-identical to an uninterrupted local run, and no cell is
    journaled twice."""
    spec_request = parse_run_request({**CHAOS_BODY, "workers": 1})
    control = render_json(
        run_parallel_replay(
            spec_request.trace, spec_request.spec, shards=1, workers=1
        ).to_dict()
    )

    journal_path = tmp_path / "journal.jsonl"
    serve = _spawn([
        "serve", "--port", "0", "--workers", "1",
        "--journal", str(journal_path),
        "--lease-timeout-s", str(CHAOS_LEASE_TIMEOUT_S),
    ])
    workers = []
    try:
        banner = serve.stdout.readline()
        match = _LISTENING.search(banner)
        assert match, f"no listening banner: {banner!r}"
        base = match.group(1)

        procs_by_worker_id = {}
        for _ in range(2):
            proc = _spawn(["worker", "--server", base, "--poll-s", "1"])
            workers.append(proc)
            banner = proc.stdout.readline()
            match = _WORKER_BANNER.search(banner)
            assert match, f"no worker banner: {banner!r}"
            procs_by_worker_id[match.group(1)] = proc

        run_id = _request(f"{base}/v1/runs", CHAOS_BODY)["id"]

        # Kill only once the run is provably mid-flight: at least one
        # cell journaled, and a worker holding a live lease.
        _await(
            lambda: _journaled_cells(journal_path, run_id) or None,
            60, "first journaled cell",
        )
        victim_id, victim = _freeze_a_lease_holder(base, procs_by_worker_id)
        snap = _request(f"{base}/v1/runs/{run_id}")
        assert snap["status"] == "running", (
            f"run already {snap['status']}; workload too small to kill "
            f"mid-flight"
        )
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

        # The frozen worker's lease must expire and requeue...
        _await(
            lambda: _metric_total(base, "repro_leases_expired_total") or None,
            CHAOS_LEASE_TIMEOUT_S + 30,
            "the killed worker's lease to expire",
        )

        # ...and the survivor finishes the run.
        def finished():
            snap = _request(f"{base}/v1/runs/{run_id}")
            return snap if snap["status"] not in ("queued", "running") \
                else None

        snap = _await(finished, 180, "chaos run to finish")
        assert snap["status"] == "done", snap.get("error")
        assert render_json(snap["report"]) == control

        journaled = _journaled_cells(journal_path, run_id)
        assert sorted(journaled) == sorted(set(journaled)), (
            "a cell was journaled more than once after the SIGKILL"
        )
        assert len(journaled) == 8
        assert _metric_total(base, "repro_lease_results_total") >= 8
    finally:
        for proc in [serve, *workers]:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=30)
