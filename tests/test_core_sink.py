"""Tests for the Wait-Match Memory data sink."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core.sink import EntryState, WaitMatchMemory
from repro.sim import Environment


def make_sink(ttl_s=10.0, proactive=True, passive=True):
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    node = cluster.workers[0]
    sink = WaitMatchMemory(
        env, node, cluster, ttl_s=ttl_s,
        proactive_release=proactive, passive_expire=passive,
    )
    return env, cluster, node, sink


KEY = ("req1", "taskA", "data0")


def test_deposit_accounts_cache_memory():
    env, cluster, node, sink = make_sink()
    assert sink.deposit(KEY, 1000.0)
    assert node.cache_usage.level == pytest.approx(1000.0)
    assert sink.is_present(KEY)
    assert sink.entry_count() == 1


def test_duplicate_deposit_rejected():
    env, cluster, node, sink = make_sink()
    assert sink.deposit(KEY, 1000.0)
    assert not sink.deposit(KEY, 1000.0)
    assert sink.duplicate_deposits == 1
    assert node.cache_usage.level == pytest.approx(1000.0)


def test_negative_deposit_rejected():
    env, cluster, node, sink = make_sink()
    with pytest.raises(ValueError):
        sink.deposit(KEY, -5.0)


def test_fetch_copies_through_membus():
    env, cluster, node, sink = make_sink()
    sink.deposit(KEY, 10e6)
    done = env.process(sink.fetch(KEY))
    env.run(until=done)
    # membus latency 0.2ms + 10 MB over 4 GB/s.
    assert env.now == pytest.approx(0.0002 + 10e6 / 4e9, rel=1e-3)


def test_fetch_missing_key_raises():
    env, cluster, node, sink = make_sink()
    proc = env.process(sink.fetch(KEY))
    with pytest.raises(KeyError):
        env.run(until=proc)


def test_proactive_release_frees_memory():
    env, cluster, node, sink = make_sink()
    sink.deposit(KEY, 1000.0)
    sink.release(KEY)
    assert node.cache_usage.level == pytest.approx(0.0)
    assert not sink.is_present(KEY)
    assert sink.releases == 1


def test_release_is_idempotent():
    env, cluster, node, sink = make_sink()
    sink.deposit(KEY, 1000.0)
    sink.release(KEY)
    sink.release(KEY)
    assert sink.releases == 1
    assert node.cache_usage.level == pytest.approx(0.0)


def test_non_proactive_mode_keeps_entry_until_request_cleanup():
    env, cluster, node, sink = make_sink(proactive=False, passive=False)
    sink.deposit(KEY, 1000.0)
    sink.release(KEY)
    assert sink.is_present(KEY)  # lingers like FaaSFlow's cache
    sink.release_request("req1")
    assert not sink.is_present(KEY)
    assert node.cache_usage.level == pytest.approx(0.0)


def test_passive_expire_spills_to_disk():
    env, cluster, node, sink = make_sink(ttl_s=5.0)
    sink.deposit(KEY, 1e6)
    env.run(until=6.0)
    entry = sink._lookup(KEY)
    assert entry.state is EntryState.SPILLED
    assert sink.spills == 1
    assert node.cache_usage.level == pytest.approx(0.0)
    assert node.disk.bytes_written == pytest.approx(1e6)


def test_fetch_proactively_releases_entry():
    """§7: data is freed as soon as the destination FLU has received it."""
    env, cluster, node, sink = make_sink(ttl_s=5.0)
    sink.deposit(KEY, 1e6)
    done = env.process(sink.fetch(KEY))
    env.run(until=done)
    assert not sink.is_present(KEY)
    assert node.cache_usage.level == pytest.approx(0.0)
    env.run(until=10.0)
    assert sink.spills == 0  # released data never expires


def test_fetched_entry_lingers_without_proactive_release():
    env, cluster, node, sink = make_sink(ttl_s=5.0, proactive=False)
    sink.deposit(KEY, 1e6)
    done = env.process(sink.fetch(KEY))
    env.run(until=done)
    env.run(until=10.0)
    entry = sink._lookup(KEY)
    assert entry.state is EntryState.IN_MEMORY  # fetched data stays fresh
    assert sink.spills == 0


def test_spilled_entry_fetch_reads_disk():
    env, cluster, node, sink = make_sink(ttl_s=1.0)
    sink.deposit(KEY, 1e6)
    env.run(until=2.0)
    reads_before = node.disk.bytes_read
    done = env.process(sink.fetch(KEY))
    env.run(until=done)
    assert node.disk.bytes_read == reads_before + 1e6


def test_release_after_spill_does_not_double_count():
    env, cluster, node, sink = make_sink(ttl_s=1.0)
    sink.deposit(KEY, 1e6)
    env.run(until=2.0)  # spilled: cache already freed
    sink.release(KEY)
    assert node.cache_usage.level == pytest.approx(0.0)
    assert not sink.is_present(KEY)


def test_multi_level_index_isolation():
    env, cluster, node, sink = make_sink()
    sink.deposit(("r1", "t1", "d1"), 10)
    sink.deposit(("r1", "t1", "d2"), 20)
    sink.deposit(("r1", "t2", "d1"), 30)
    sink.deposit(("r2", "t1", "d1"), 40)
    assert sink.entry_count() == 4
    sink.release_request("r1")
    assert sink.entry_count() == 1
    assert sink.is_present(("r2", "t1", "d1"))


def test_resident_bytes_tracks_memory_entries_only():
    env, cluster, node, sink = make_sink(ttl_s=1.0, proactive=False)
    sink.deposit(("r1", "t", "mem"), 100)
    sink.deposit(("r2", "t", "spill"), 200)
    # Fetch the first so it cannot expire; let the second spill.
    done = env.process(sink.fetch(("r1", "t", "mem")))
    env.run(until=done)
    env.run(until=2.0)
    assert sink.resident_bytes() == pytest.approx(100)


def test_ttl_validation():
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    with pytest.raises(ValueError):
        WaitMatchMemory(env, cluster.workers[0], cluster, ttl_s=0)
